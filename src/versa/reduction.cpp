#include "versa/reduction.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

namespace aadlsched::versa {

using acsr::DefId;
using acsr::Event;
using acsr::EventSetId;
using acsr::Label;
using acsr::ParamValue;
using acsr::Priority;
using acsr::ScopeParts;
using acsr::TermId;
using acsr::TermKind;
using acsr::TermNode;
using acsr::TermTable;
using acsr::Transition;

// --- SymmetryModel ---------------------------------------------------------

SymmetryModel SymmetryModel::build(
    acsr::Context& ctx,
    const std::vector<std::vector<std::string>>& role_groups,
    bool uniform_dispatch) {
  SymmetryModel m;
  m.uniform_dispatch_ = uniform_dispatch;

  for (const std::vector<std::string>& roles : role_groups) {
    if (roles.size() < 2) continue;
    Group g;
    g.roles = roles;
    g.events_by_kind.resize(2);
    for (const std::string& role : roles) {
      g.events_by_kind[0].push_back(ctx.event("dispatch_" + role));
      g.events_by_kind[1].push_back(ctx.event("done_" + role));
    }

    // Every definition whose name is "T_<role0>_<suffix>" or
    // "D_<role0>_<suffix>" anchors one shape row; the sibling for each
    // other role must exist under the same prefix/suffix or the group is
    // structurally asymmetric and gets dropped (safe: no reduction).
    bool ok = true;
    static const char* const kPrefixes[] = {"T_", "D_"};
    const std::size_t ndefs = ctx.definition_count();
    for (std::size_t d = 0; d < ndefs && ok; ++d) {
      const std::string& name =
          ctx.definition(static_cast<DefId>(d)).name;
      for (const char* prefix : kPrefixes) {
        const std::string head = prefix + roles[0] + "_";
        if (name.size() <= head.size() ||
            name.compare(0, head.size(), head) != 0)
          continue;
        const std::string suffix = name.substr(head.size());
        std::vector<DefId> row{static_cast<DefId>(d)};
        for (std::size_t r = 1; r < roles.size(); ++r) {
          const auto sib =
              ctx.find_definition(prefix + roles[r] + "_" + suffix);
          if (!sib) {
            ok = false;
            break;
          }
          row.push_back(*sib);
        }
        if (!ok) break;
        g.defs_by_kind.push_back(std::move(row));
      }
    }
    if (!ok || g.defs_by_kind.empty()) continue;

    const auto gi = static_cast<std::int32_t>(m.groups_.size());
    for (std::size_t k = 0; k < g.defs_by_kind.size(); ++k)
      for (std::size_t r = 0; r < g.defs_by_kind[k].size(); ++r)
        m.def_tags_.emplace(
            g.defs_by_kind[k][r],
            Tag{gi, static_cast<std::int32_t>(k),
                static_cast<std::int32_t>(r)});
    for (std::size_t k = 0; k < g.events_by_kind.size(); ++k)
      for (std::size_t r = 0; r < g.events_by_kind[k].size(); ++r)
        m.event_tags_.emplace(
            g.events_by_kind[k][r],
            Tag{gi, static_cast<std::int32_t>(k),
                static_cast<std::int32_t>(r)});
    m.groups_.push_back(std::move(g));
  }
  return m;
}

std::vector<std::vector<std::string>> SymmetryModel::role_names() const {
  std::vector<std::vector<std::string>> out;
  out.reserve(groups_.size());
  for (const Group& g : groups_) out.push_back(g.roles);
  return out;
}

// --- Reducer ---------------------------------------------------------------

std::uint32_t Reducer::owner_encoded(TermId t) {
  if (const std::uint32_t* cached = owner_memo_.find(t)) return *cached;
  TermTable& tt = sem_.context().terms();
  const TermNode node = tt.node(t);
  std::uint32_t owner = kOwnerNone;
  const auto merge = [&owner](std::uint32_t x) {
    if (x == kOwnerNone) return;
    if (owner == kOwnerNone)
      owner = x;
    else if (owner != x)
      owner = kOwnerMixed;
  };
  const auto tag_of = [](const SymmetryModel::Tag* tag) -> std::uint32_t {
    return (static_cast<std::uint32_t>(tag->group) << 16) |
           static_cast<std::uint32_t>(tag->role);
  };
  switch (node.kind) {
    case TermKind::Nil:
      break;
    case TermKind::Act:
      merge(owner_encoded(node.b));
      break;
    case TermKind::Evt:
      if (const auto* tag = model_->event_tag(node.a)) merge(tag_of(tag));
      merge(owner_encoded(node.b));
      break;
    case TermKind::Choice:
    case TermKind::Parallel: {
      const auto p = tt.payload(t);
      const std::vector<TermId> kids(p.begin(), p.end());
      for (const TermId k : kids) merge(owner_encoded(k));
      break;
    }
    case TermKind::Restrict:
      merge(owner_encoded(node.b));
      break;
    case TermKind::Scope: {
      const ScopeParts parts = tt.scope_parts(t);
      merge(owner_encoded(parts.body));
      if (parts.exception_label != 0)
        if (const auto* tag = model_->event_tag(parts.exception_label))
          merge(tag_of(tag));
      if (parts.exception_cont != acsr::kInvalidTerm)
        merge(owner_encoded(parts.exception_cont));
      if (parts.interrupt_handler != acsr::kInvalidTerm)
        merge(owner_encoded(parts.interrupt_handler));
      if (parts.timeout_handler != acsr::kInvalidTerm)
        merge(owner_encoded(parts.timeout_handler));
      break;
    }
    case TermKind::Call:
      if (const auto* tag = model_->def_tag(node.a)) merge(tag_of(tag));
      break;
  }
  owner_memo_.emplace(t, owner);
  return owner;
}

TermId Reducer::rename(TermId t, std::int32_t group, std::int32_t from,
                       std::int32_t to) {
  if (from == to) return t;
  const std::uint64_t key = (static_cast<std::uint64_t>(t) << 32) |
                            (static_cast<std::uint32_t>(group) << 16) |
                            (static_cast<std::uint32_t>(from) << 8) |
                            static_cast<std::uint32_t>(to);
  if (const auto it = rename_memo_.find(key); it != rename_memo_.end())
    return it->second;

  TermTable& tt = sem_.context().terms();
  const TermNode node = tt.node(t);  // copy: interning below can reallocate
  const SymmetryModel::Group& g =
      model_->groups()[static_cast<std::size_t>(group)];
  const auto map_event = [&](Event e) -> Event {
    const auto* tag = model_->event_tag(e);
    if (tag && tag->group == group && tag->role == from)
      return g.events_by_kind[static_cast<std::size_t>(tag->kind)]
                             [static_cast<std::size_t>(to)];
    return e;
  };

  TermId out = t;
  switch (node.kind) {
    case TermKind::Nil:
      break;
    case TermKind::Act:
      out = tt.act(node.a, rename(node.b, group, from, to));
      break;
    case TermKind::Evt:
      out = tt.evt(map_event(node.a), node.flag != 0,
                   static_cast<Priority>(node.c),
                   rename(node.b, group, from, to));
      break;
    case TermKind::Choice:
    case TermKind::Parallel: {
      const auto p = tt.payload(t);
      std::vector<TermId> kids(p.begin(), p.end());
      for (TermId& k : kids) k = rename(k, group, from, to);
      out = node.kind == TermKind::Choice ? tt.choice(std::move(kids))
                                          : tt.parallel(std::move(kids));
      break;
    }
    case TermKind::Restrict:
      out = tt.restrict(node.a, rename(node.b, group, from, to));
      break;
    case TermKind::Scope: {
      ScopeParts parts = tt.scope_parts(t);
      parts.body = rename(parts.body, group, from, to);
      if (parts.exception_label != 0)
        parts.exception_label = map_event(parts.exception_label);
      if (parts.exception_cont != acsr::kInvalidTerm)
        parts.exception_cont = rename(parts.exception_cont, group, from, to);
      if (parts.interrupt_handler != acsr::kInvalidTerm)
        parts.interrupt_handler =
            rename(parts.interrupt_handler, group, from, to);
      if (parts.timeout_handler != acsr::kInvalidTerm)
        parts.timeout_handler =
            rename(parts.timeout_handler, group, from, to);
      out = tt.scope(parts);
      break;
    }
    case TermKind::Call: {
      DefId def = node.a;
      if (const auto* tag = model_->def_tag(def);
          tag && tag->group == group && tag->role == from)
        def = g.defs_by_kind[static_cast<std::size_t>(tag->kind)]
                            [static_cast<std::size_t>(to)];
      const auto p = tt.payload(t);
      std::vector<ParamValue> args;
      args.reserve(p.size());
      for (const std::uint32_t v : p)
        args.push_back(static_cast<ParamValue>(v));
      out = tt.call(def, args);
      break;
    }
  }
  rename_memo_.emplace(key, out);
  return out;
}

TermId Reducer::canon_compute(TermId t) {
  TermTable& tt = sem_.context().terms();
  const TermNode node = tt.node(t);
  if (node.kind == TermKind::Restrict) {
    const TermId body = canonical(node.b);
    return body == node.b ? t : tt.restrict(node.a, body);
  }
  if (node.kind != TermKind::Parallel) return t;

  const auto p = tt.payload(t);
  const std::vector<TermId> kids(p.begin(), p.end());

  const auto& groups = model_->groups();
  std::vector<std::vector<std::vector<TermId>>> by_group(groups.size());
  std::vector<TermId> rebuilt;
  rebuilt.reserve(kids.size());
  bool any_role_child = false;
  for (const TermId k : kids) {
    const std::uint32_t owner = owner_encoded(k);
    if (owner == kOwnerNone || owner == kOwnerMixed) {
      rebuilt.push_back(k);
      continue;
    }
    const std::size_t g = owner >> 16;
    const std::size_t r = owner & 0xFFFFu;
    if (by_group[g].empty()) by_group[g].resize(groups[g].roles.size());
    by_group[g][r].push_back(k);
    any_role_child = true;
  }
  if (!any_role_child) return t;

  for (std::size_t g = 0; g < groups.size(); ++g) {
    auto& roles = by_group[g];
    if (roles.empty()) continue;
    // Neutral signature: every role's children renamed into role 0's
    // namespace, sorted. π-related states produce the same multiset of
    // signatures, so the sorted assignment below is orbit-invariant.
    std::vector<std::vector<TermId>> sigs(roles.size());
    for (std::size_t r = 0; r < roles.size(); ++r) {
      sigs[r].reserve(roles[r].size());
      for (const TermId k : roles[r])
        sigs[r].push_back(rename(k, static_cast<std::int32_t>(g),
                                 static_cast<std::int32_t>(r), 0));
      std::sort(sigs[r].begin(), sigs[r].end());
    }
    std::vector<std::size_t> order(roles.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&sigs](std::size_t a, std::size_t b) {
                return sigs[a] != sigs[b] ? sigs[a] < sigs[b] : a < b;
              });
    for (std::size_t j = 0; j < order.size(); ++j)
      for (const TermId s : sigs[order[j]])
        rebuilt.push_back(rename(s, static_cast<std::int32_t>(g), 0,
                                 static_cast<std::int32_t>(j)));
  }
  if (rebuilt.size() == 1) return rebuilt[0];
  return tt.parallel(std::move(rebuilt));
}

TermId Reducer::canonical(TermId t) {
  if (!active() || !opts_.symmetry) return t;
  if (const TermId* cached = canon_memo_.find(t)) return *cached;
  const TermId out = canon_compute(t);
  canon_memo_.emplace(t, out);
  if (out != t) ++stats_.states_saved;
  return out;
}

namespace {

/// Same ordering Semantics::canonicalize uses, so predicted and actual
/// fans can be compared element-wise after sorting.
bool transition_less(const Transition& a, const Transition& b) {
  const auto key = [](const Transition& t) {
    return std::make_tuple(static_cast<int>(t.label.kind), t.label.action,
                           t.label.event * 2u + (t.label.send ? 1u : 0u),
                           static_cast<std::uint32_t>(t.label.priority),
                           t.target);
  };
  return key(a) < key(b);
}

/// base \ removed ++ added over sorted unique `base`; false when some
/// element of `removed` is not present.
bool apply_move(const std::vector<TermId>& base,
                const std::vector<TermId>& removed,
                const std::vector<TermId>& added,
                std::vector<TermId>& out) {
  out.clear();
  out.reserve(base.size());
  std::size_t r = 0;
  for (const TermId c : base) {
    if (r < removed.size() && removed[r] == c) {
      ++r;
      continue;
    }
    out.push_back(c);
  }
  if (r != removed.size()) return false;
  out.insert(out.end(), added.begin(), added.end());
  return true;
}

}  // namespace

void Reducer::linearize(TermId s, std::vector<Transition>& fan) {
  if (!active() || !opts_.commute || fan.size() < 2) return;

  // Condition 1: the whole prioritized fan is equal-priority taus. (At a
  // uniform dispatch boundary these are the dispatcher/skeleton syncs; any
  // timed or external-event alternative disables the rule.)
  const Priority prio = fan[0].label.priority;
  for (const Transition& tr : fan)
    if (tr.label.kind != Label::Kind::Tau || tr.label.priority != prio)
      return;

  TermTable& tt = sem_.context().terms();
  const TermNode snode = tt.node(s);
  if (snode.kind != TermKind::Restrict) return;
  const EventSetId fset = snode.a;
  if (tt.kind(snode.b) != TermKind::Parallel) return;
  const auto sp = tt.payload(snode.b);
  const std::vector<TermId> base(sp.begin(), sp.end());
  // Duplicate children make mover replacement ambiguous — bail.
  for (std::size_t i = 1; i < base.size(); ++i)
    if (base[i] == base[i - 1]) return;

  // Condition 2: each transition's movers (the children it changes) are
  // owned by a single symmetry role, and those roles are pairwise
  // distinct — the taus touch disjoint, non-communicating components.
  struct Move {
    std::vector<TermId> removed, added;
  };
  std::vector<Move> moves(fan.size());
  std::vector<std::uint32_t> owners(fan.size());
  for (std::size_t i = 0; i < fan.size(); ++i) {
    const TermNode tn = tt.node(fan[i].target);
    if (tn.kind != TermKind::Restrict || tn.a != fset) return;
    if (tt.kind(tn.b) != TermKind::Parallel) return;
    const auto tp = tt.payload(tn.b);
    const std::vector<TermId> tgt(tp.begin(), tp.end());
    if (tgt.size() != base.size()) return;
    std::set_difference(base.begin(), base.end(), tgt.begin(), tgt.end(),
                        std::back_inserter(moves[i].removed));
    std::set_difference(tgt.begin(), tgt.end(), base.begin(), base.end(),
                        std::back_inserter(moves[i].added));
    if (moves[i].removed.empty() || moves[i].added.empty()) return;
    std::uint32_t own = kOwnerNone;
    for (const std::vector<TermId>* side :
         {&moves[i].removed, &moves[i].added}) {
      for (const TermId c : *side) {
        const std::uint32_t o = owner_encoded(c);
        if (o == kOwnerNone || o == kOwnerMixed) return;
        if (own == kOwnerNone)
          own = o;
        else if (own != o)
          return;
      }
    }
    owners[i] = own;
  }
  {
    std::vector<std::uint32_t> sorted = owners;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
      return;
  }

  // Condition 3 (verification): after the least tau, the successor's
  // prioritized fan must be *exactly* the predicted residual — the other
  // taus, shifted by their own movers. No new transition, no lost one, no
  // priority shift. The same check re-runs when that successor is
  // expanded, so the whole kept chain is verified stepwise.
  const TermId t0 = fan[0].target;
  const TermNode t0node = tt.node(t0);
  const auto t0p = tt.payload(t0node.b);
  const std::vector<TermId> base0(t0p.begin(), t0p.end());
  std::vector<Transition> predicted;
  predicted.reserve(fan.size() - 1);
  std::vector<TermId> scratch;
  for (std::size_t j = 1; j < fan.size(); ++j) {
    if (!apply_move(base0, moves[j].removed, moves[j].added, scratch))
      return;
    const TermId par = tt.parallel(scratch);
    predicted.push_back(Transition{fan[j].label, tt.restrict(fset, par)});
  }
  std::vector<Transition> actual = sem_.prioritized(t0);
  if (actual.size() != predicted.size()) return;
  std::sort(predicted.begin(), predicted.end(), transition_less);
  std::sort(actual.begin(), actual.end(), transition_less);
  if (actual != predicted) return;

  stats_.pruned_transitions += fan.size() - 1;
  ++stats_.commuted_expansions;
  fan.resize(1);
}

}  // namespace aadlsched::versa
