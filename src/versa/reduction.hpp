// State-space reduction layer shared by both explorers (DESIGN.md §13).
//
// Two reductions, both driven by the symmetry groups the translator detects
// (translate::SymmetrySpec) and both provably inert on the default
// ordered-instants translation, where the groups are empty by construction:
//
//   * Symmetry canonicalization. Interchangeable thread instances (same
//     processor, protocol, timing, priorities, private event footprint)
//     make states that differ only by a role permutation bisimilar. Before
//     visited-set dedup every successor is rewritten to a canonical orbit
//     representative: the parallel children owned by each role are renamed
//     into role 0's namespace (a neutral signature), the signatures are
//     sorted, and the sorted occupants are renamed back into consecutive
//     role namespaces. π-related states reach the same representative, so
//     the explorer visits one state per orbit.
//
//   * Commutation (partial-order) linearization. This generalizes the
//     ordered-instants trick: when a state's entire prioritized fan is
//     equal-priority taus whose movers (the parallel children they change)
//     belong to distinct symmetry roles, the taus touch disjoint,
//     non-communicating components and every interleaving converges to the
//     same end-of-instant state through intermediate states that always
//     keep the remaining taus enabled. The fan is pruned to its least
//     member — but only after *verifying* dynamically that the successor's
//     prioritized fan is exactly the predicted residual set (same labels,
//     targets shifted by the remaining movers). Anything unexpected — an
//     emergent transition, a priority change, a reshaped composition —
//     fails the check and the full fan is kept. The verification repeats
//     at every step of the kept chain.
//
// The Reducer is per-engine-worker (its memo tables are not synchronized);
// the SymmetryModel is immutable after build() and shared. Canonicalization
// interns new terms, which is safe under Context shared mode.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "acsr/semantics.hpp"
#include "util/flat_set.hpp"

namespace aadlsched::versa {

struct ReductionOptions {
  bool symmetry = true;
  bool commute = true;

  bool any() const { return symmetry || commute; }
};

/// Resolved, id-level description of the interchangeable-thread groups.
/// Built from mangled role names (the form the translator reports and the
/// checkpoint serializes) by looking the per-role definitions
/// ("T_<role>_*", "D_<role>_*") and events ("dispatch_<role>",
/// "done_<role>") up in the Context, so it can be reconstructed against a
/// checkpoint-restored Context that never saw a Translation.
class SymmetryModel {
 public:
  struct Group {
    std::vector<std::string> roles;  // mangled thread names, size >= 2
    /// defs_by_kind[k][r]: the role-r definition of shape k (one shape per
    /// distinct name suffix, e.g. "T_*_Compute"). All rows are complete —
    /// a group missing a sibling definition is dropped at build time.
    std::vector<std::vector<acsr::DefId>> defs_by_kind;
    /// events_by_kind[k][r]: kind 0 = dispatch_<role>, 1 = done_<role>.
    std::vector<std::vector<acsr::Event>> events_by_kind;
  };

  /// Reverse index entry: which (group, shape, role) an id belongs to.
  struct Tag {
    std::int32_t group = -1;
    std::int32_t kind = -1;
    std::int32_t role = -1;
  };

  SymmetryModel() = default;

  static SymmetryModel build(
      acsr::Context& ctx,
      const std::vector<std::vector<std::string>>& role_groups,
      bool uniform_dispatch);

  /// The reducer engages only for uniform-instant translations with at
  /// least one resolved group; otherwise canonical() is the identity and
  /// linearize() a no-op, and exploration output is bit-identical to a run
  /// without the layer.
  bool active() const { return uniform_dispatch_ && !groups_.empty(); }
  bool uniform_dispatch() const { return uniform_dispatch_; }
  const std::vector<Group>& groups() const { return groups_; }

  const Tag* def_tag(acsr::DefId d) const { return def_tags_.find(d); }
  const Tag* event_tag(acsr::Event e) const { return event_tags_.find(e); }

  /// Role names per group, for checkpoint serialization.
  std::vector<std::vector<std::string>> role_names() const;

 private:
  std::vector<Group> groups_;
  bool uniform_dispatch_ = false;
  util::FlatIdMap<Tag> def_tags_;
  util::FlatIdMap<Tag> event_tags_;
};

/// Per-worker reduction state: memoized canonicalization and the
/// commutation rule. Constructed against the worker's Semantics (whose
/// Context it rebuilds terms in).
class Reducer {
 public:
  struct Stats {
    /// Distinct raw states folded into a different canonical
    /// representative — states a reduction-free run would have visited.
    std::uint64_t states_saved = 0;
    /// Expansions whose fan the commutation rule linearized.
    std::uint64_t commuted_expansions = 0;
    /// Transitions pruned by those linearizations.
    std::uint64_t pruned_transitions = 0;
  };

  Reducer(acsr::Semantics& sem, const SymmetryModel* model,
          ReductionOptions opts)
      : sem_(sem), model_(model), opts_(opts) {}

  bool active() const { return model_ && model_->active() && opts_.any(); }

  /// Canonical representative of t's symmetry orbit (t when inactive).
  acsr::TermId canonical(acsr::TermId t);

  /// Prune `fan` (the prioritized fan of s) to its least member when the
  /// verified pure-commuter conditions hold; otherwise leave it untouched.
  void linearize(acsr::TermId s, std::vector<acsr::Transition>& fan);

  const Stats& stats() const { return stats_; }

 private:
  // Encoded owner of a term: which (group, role) its defs/events belong
  // to. kOwnerNone = no group ids at all; kOwnerMixed = more than one
  // role — such a term is never touched by the reductions.
  static constexpr std::uint32_t kOwnerNone = 0xFFFFFFFEu;
  static constexpr std::uint32_t kOwnerMixed = 0xFFFFFFFDu;

  std::uint32_t owner_encoded(acsr::TermId t);
  acsr::TermId canon_compute(acsr::TermId t);
  acsr::TermId rename(acsr::TermId t, std::int32_t group, std::int32_t from,
                      std::int32_t to);

  acsr::Semantics& sem_;
  const SymmetryModel* model_;
  ReductionOptions opts_;
  Stats stats_;
  util::FlatIdMap<acsr::TermId> canon_memo_;
  util::FlatIdMap<std::uint32_t> owner_memo_;
  // Key packs (term, group, from, to) exactly — no collisions.
  std::unordered_map<std::uint64_t, acsr::TermId> rename_memo_;
};

}  // namespace aadlsched::versa
