// Exploration checkpoints: persist a paused BFS (versa::Wavefront) together
// with everything it needs from its acsr::Context, so a budget-bound run can
// be resumed later — in another process — without re-translating the AADL
// model or re-exploring the visited prefix (DESIGN.md §12).
//
// A checkpoint is a self-contained text artifact:
//   * the translated ACSR module, round-tripped through the existing
//     printer/parser (acsr::Printer::module / acsr::parse_module), so the
//     restored Context has the same definitions;
//   * name tables (resources, events, definitions) serialized *by name* —
//     ids are not stable across a module round-trip (forward references
//     reorder DefIds), names are;
//   * the term DAG reachable from the visited set, emitted in ascending
//     TermId order. Hash-consing appends children before parents, so an
//     ascending walk reconstructs every node through the normal ground
//     constructors with all children already mapped;
//   * the wavefront (frontier, next level, visited set, counters), with the
//     visited set sorted so serialization is byte-stable regardless of the
//     enumeration order of the engine's seen-set;
//   * the printed initial ground term, re-parsed on restore through
//     acsr::parse_ground_term as an end-to-end printer/parser cross-check;
//   * a trailing FNV-1a digest over everything above, verified first.
//
// Soundness of resuming (DESIGN.md §12): at any stop point both engines
// maintain the BFS invariant that every reachable-but-unvisited state is
// reachable through frontier ++ next_frontier. Seeding a fresh run with
// (visited, frontiers, counters) therefore continues the exact same BFS:
// the verdict is identical to an uninterrupted run, and on a run that
// completes the space the state/transition counts are identical too.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "acsr/context.hpp"
#include "versa/explorer.hpp"

namespace aadlsched::versa {

/// The reduction configuration a checkpoint was captured under (format v2).
/// A visited set built with symmetry canonicalization holds orbit
/// representatives, not raw states, so resuming it under different
/// reduction settings would silently re-explore (or skip) states; the
/// parser hands the captured configuration back so the caller can rebuild
/// the same SymmetryModel — and reject a resume whose settings differ.
struct CheckpointReduction {
  bool symmetry = false;
  bool commute = false;
  bool uniform_dispatch = false;
  /// Mangled role names per symmetry group (what SymmetryModel::build
  /// takes; resolvable against the restored Context by name).
  std::vector<std::vector<std::string>> role_groups;
};

/// A checkpoint parsed back into a fresh Context plus the wavefront with
/// every id remapped into that Context's tables.
struct RestoredCheckpoint {
  std::unique_ptr<acsr::Context> ctx;
  Wavefront wave;
  /// The cache key the checkpoint was stored under ("-" when none given).
  std::string key;
  /// Reduction settings the capturing run explored with.
  CheckpointReduction reduction;
};

/// Serialize a captured wavefront against the Context it was explored in.
/// `key` identifies the request (instance fingerprint + options hash); pass
/// "-" or empty when keying is handled elsewhere. Deterministic: the same
/// (context, wavefront, reduction) always serializes to the same bytes.
std::string serialize_checkpoint(const acsr::Context& ctx,
                                 const Wavefront& wave, std::string_view key,
                                 const CheckpointReduction& reduction = {});

/// Parse and validate a checkpoint. Returns std::nullopt (with a
/// human-readable reason in `error`) on any digest mismatch, malformed
/// section, unknown name, or out-of-range id — the caller falls back to a
/// cold run. Blobs in a stale format version (v1 predates the reduction
/// section) are rejected the same way, with a diagnostic naming the stale
/// version, rather than resumed with guessed settings.
std::optional<RestoredCheckpoint> parse_checkpoint(std::string_view text,
                                                   std::string& error);

}  // namespace aadlsched::versa
