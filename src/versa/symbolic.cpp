#include "versa/symbolic.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <unordered_map>

#include "util/hash.hpp"

namespace aadlsched::versa {

namespace {

/// Discrete + entry-point state of one class. `x[i]` is the time since
/// task i's last dispatch (virtually extended before the first dispatch:
/// the initial value T_i - offset_i makes the first dispatch land at
/// t = offset_i). Invariants between events: 0 <= x[i] <= T_i;
/// active[i] implies 0 < rem[i] and x[i] < D_i.
struct ClassState {
  std::vector<std::int64_t> x;
  std::vector<std::int64_t> rem;
  std::vector<std::uint8_t> active;

  friend bool operator==(const ClassState& a, const ClassState& b) {
    return a.x == b.x && a.rem == b.rem && a.active == b.active;
  }
};

struct StoredClass {
  ClassState state;
  Dbm zone;               // delay segment [entry, entry + delta]
  std::int64_t t_abs;     // absolute entry time (witness only, not identity)
  std::int64_t delta;     // delay to the boundary event instant
  std::uint64_t depth;
  std::int64_t parent;    // index into the class table; -1 for the root
  std::string event;      // what happened at this class's entry instant
};

std::string format_time(std::int64_t ns) {
  if (ns % 1'000'000 == 0) return std::to_string(ns / 1'000'000) + "ms";
  if (ns % 1'000 == 0) return std::to_string(ns / 1'000) + "us";
  return std::to_string(ns) + "ns";
}

/// The running task per cpu: highest priority among active tasks.
/// Priorities are validated distinct per cpu, so this is deterministic.
std::vector<std::int64_t> running_per_cpu(const SymbolicModel& m,
                                          const ClassState& s) {
  std::vector<std::int64_t> run(m.cpu_count, -1);
  for (std::size_t i = 0; i < m.tasks.size(); ++i) {
    if (!s.active[i]) continue;
    std::int64_t& r = run[m.tasks[i].cpu];
    if (r < 0 || m.tasks[i].priority >
                     m.tasks[static_cast<std::size_t>(r)].priority)
      r = static_cast<std::int64_t>(i);
  }
  return run;
}

/// Delay from the entry point of `s` to its next event instant (first
/// dispatch, deadline, or running-job completion). Zero only for the
/// artificial initial state (offset-0 dispatches fire at t = 0).
std::int64_t next_delta(const SymbolicModel& m, const ClassState& s) {
  std::int64_t delta = INT64_MAX;
  const auto run = running_per_cpu(m, s);
  for (std::size_t i = 0; i < m.tasks.size(); ++i) {
    delta = std::min(delta, m.tasks[i].period_ns - s.x[i]);
    if (s.active[i])
      delta = std::min(delta, m.tasks[i].deadline_ns - s.x[i]);
  }
  for (const std::int64_t r : run)
    if (r >= 0) delta = std::min(delta, s.rem[static_cast<std::size_t>(r)]);
  return delta;
}

/// The zone of a class: its entry point closed under the delay to the next
/// event. A genuine (non-singular) DBM — the diagonal constraints pin the
/// clock differences, the delay bounds the segment.
Dbm class_zone(const SymbolicModel& m, const ClassState& s,
               std::int64_t delta) {
  Dbm z = Dbm::point(s.x);
  z.up();
  for (std::size_t i = 0; i < m.tasks.size(); ++i)
    z.constrain_upper(i + 1, s.x[i] + delta);
  z.canonicalize();
  return z;
}

/// Signature of the subsumption bucket: discrete state plus the clock
/// *differences*. Classes in one bucket lie on the same delay line, where
/// zone inclusion (segment containment) is meaningful.
std::uint64_t bucket_hash(const ClassState& s) {
  std::uint64_t h = util::fnv1a(std::string_view{});
  for (const std::uint8_t a : s.active) h = util::hash_combine(h, a);
  for (const std::int64_t r : s.rem)
    h = util::hash_combine(h, static_cast<std::uint64_t>(r));
  for (const std::int64_t xi : s.x)
    h = util::hash_combine(h, static_cast<std::uint64_t>(xi - s.x[0]));
  return h;
}

bool same_bucket(const ClassState& a, const ClassState& b) {
  if (a.active != b.active || a.rem != b.rem) return false;
  for (std::size_t i = 0; i < a.x.size(); ++i)
    if (a.x[i] - a.x[0] != b.x[i] - b.x[0]) return false;
  return true;
}

struct Expansion {
  bool miss = false;
  std::vector<std::string> missed;
  std::string event_desc;
  std::vector<ClassState> successors;  // demand-corner fan when !miss
  std::int64_t delta = 0;
};

/// Advance `s` to its boundary instant and fire every event there, in the
/// enumerator's order: completions first, then deadline checks, then
/// dispatches. A running job completing exactly at its deadline is on
/// time (the translated dispatcher accepts `done` at t == Deadline); an
/// active job with work left at its deadline instant is a miss.
Expansion expand(const SymbolicModel& m, const ClassState& in,
                 bool corner_demands) {
  Expansion out;
  out.delta = next_delta(m, in);

  ClassState s = in;
  const auto run = running_per_cpu(m, s);
  for (std::size_t i = 0; i < s.x.size(); ++i) s.x[i] += out.delta;
  for (const std::int64_t r : run)
    if (r >= 0) s.rem[static_cast<std::size_t>(r)] -= out.delta;

  std::string desc;
  const auto note = [&desc](const std::string& what) {
    if (!desc.empty()) desc += ", ";
    desc += what;
  };

  // Completions: only the running job of a cpu can drain to zero.
  for (std::size_t i = 0; i < m.tasks.size(); ++i) {
    if (s.active[i] && s.rem[i] == 0) {
      s.active[i] = 0;
      note("completion of " + m.tasks[i].path);
    }
  }
  // Deadline checks (post-completion: finishing at the boundary is fine).
  for (std::size_t i = 0; i < m.tasks.size(); ++i) {
    if (s.active[i] && s.x[i] >= m.tasks[i].deadline_ns) {
      out.miss = true;
      out.missed.push_back(m.tasks[i].path);
      note("deadline miss of " + m.tasks[i].path);
    }
  }
  if (out.miss) {
    out.event_desc = desc;
    return out;
  }
  // Dispatches, with the demand-interval corner fan.
  std::vector<std::size_t> dispatched;
  for (std::size_t i = 0; i < m.tasks.size(); ++i) {
    if (s.x[i] == m.tasks[i].period_ns) {
      s.x[i] = 0;
      dispatched.push_back(i);
      note("dispatch of " + m.tasks[i].path);
    }
  }
  out.event_desc = desc;

  std::vector<std::size_t> varying;  // dispatched tasks with cmin < cmax
  for (const std::size_t i : dispatched)
    if (corner_demands && m.tasks[i].cmin_ns < m.tasks[i].cmax_ns)
      varying.push_back(i);
  // Cap the corner fan: beyond 2^8 corners, the all-cmax corner alone
  // still decides the verdict (demand monotonicity, DESIGN.md §16).
  if (varying.size() > 8) varying.clear();

  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << varying.size());
       ++mask) {
    ClassState succ = s;
    for (const std::size_t i : dispatched) {
      succ.rem[i] = m.tasks[i].cmax_ns;
      succ.active[i] = 1;
    }
    for (std::size_t v = 0; v < varying.size(); ++v)
      if (mask & (std::uint64_t{1} << v))
        succ.rem[varying[v]] = m.tasks[varying[v]].cmin_ns;
    // Zero-demand jobs complete at their dispatch instant.
    for (const std::size_t i : dispatched) {
      if (succ.rem[i] == 0) succ.active[i] = 0;
    }
    out.successors.push_back(std::move(succ));
  }
  return out;
}

}  // namespace

std::vector<std::string> validate_model(const SymbolicModel& m) {
  std::vector<std::string> reasons;
  if (m.tasks.empty()) reasons.push_back("no tasks");
  if (m.cpu_count == 0) reasons.push_back("no processors");
  for (const SymbolicTask& t : m.tasks) {
    if (t.period_ns <= 0)
      reasons.push_back("task '" + t.path + "' has no positive period");
    if (t.deadline_ns <= 0 || t.deadline_ns > t.period_ns)
      reasons.push_back("task '" + t.path +
                        "' deadline is not constrained (0 < D <= T)");
    if (t.cmin_ns < 0 || t.cmax_ns < t.cmin_ns)
      reasons.push_back("task '" + t.path + "' has a malformed demand " +
                        "interval");
    if (t.offset_ns < 0 || t.offset_ns > t.period_ns)
      reasons.push_back("task '" + t.path +
                        "' dispatch offset outside [0, period]");
    if (t.cpu >= m.cpu_count)
      reasons.push_back("task '" + t.path + "' bound to unknown processor");
  }
  for (std::size_t a = 0; a < m.tasks.size(); ++a) {
    for (std::size_t b = a + 1; b < m.tasks.size(); ++b) {
      if (m.tasks[a].cpu == m.tasks[b].cpu &&
          m.tasks[a].priority == m.tasks[b].priority)
        reasons.push_back("tasks '" + m.tasks[a].path + "' and '" +
                          m.tasks[b].path +
                          "' share a priority on one processor");
    }
  }
  return reasons;
}

SymbolicResult explore_symbolic(const SymbolicModel& m,
                                const SymbolicOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  SymbolicResult result;
  result.dbm_dimension = m.tasks.size() + 1;

  if (auto reasons = validate_model(m); !reasons.empty()) {
    result.stop = util::StopReason::Fault;
    result.witness = std::move(reasons);
    return result;
  }

  util::BudgetTracker tracker(opts.budget);

  std::vector<StoredClass> table;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  std::deque<std::size_t> queue;

  const auto finish = [&](SymbolicResult& r) {
    r.classes = table.size();
    r.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  };

  /// Insert a candidate class unless an already-visited class on the same
  /// delay line subsumes its zone. Returns true when inserted.
  const auto insert = [&](ClassState&& s, std::int64_t t_abs,
                          std::uint64_t depth, std::int64_t parent,
                          std::string event) {
    const std::int64_t delta = next_delta(m, s);
    Dbm zone = class_zone(m, s, delta);
    auto& bucket = buckets[bucket_hash(s)];
    for (const std::size_t idx : bucket) {
      if (same_bucket(table[idx].state, s) && table[idx].zone.includes(zone)) {
        ++result.subsumptions;
        return false;
      }
    }
    bucket.push_back(table.size());
    queue.push_back(table.size());
    table.push_back(StoredClass{std::move(s), std::move(zone), t_abs, delta,
                                depth, parent, std::move(event)});
    result.peak_frontier = std::max<std::uint64_t>(result.peak_frontier,
                                                   queue.size());
    return true;
  };

  ClassState init;
  init.x.reserve(m.tasks.size());
  for (const SymbolicTask& t : m.tasks)
    init.x.push_back(t.period_ns - t.offset_ns);
  init.rem.assign(m.tasks.size(), 0);
  init.active.assign(m.tasks.size(), 0);
  insert(std::move(init), 0, 0, -1, "system start");

  while (!queue.empty()) {
    if (table.size() >= opts.max_classes) {
      result.stop = util::StopReason::MaxStates;
      finish(result);
      return result;
    }
    const auto status = tracker.check(table.size());
    if (status.signal == util::BudgetSignal::Stop) {
      result.stop = status.reason;
      finish(result);
      return result;
    }

    const std::size_t cur = queue.front();
    queue.pop_front();
    result.depth = std::max(result.depth, table[cur].depth);

    // expand() re-reads delta from the state; it matches table[cur].delta.
    Expansion ex = expand(m, table[cur].state, opts.corner_demands);
    const std::int64_t t_event = table[cur].t_abs + ex.delta;

    if (ex.miss) {
      result.miss_found = true;
      result.missed = std::move(ex.missed);
      // Walk back to the root for the event trail.
      std::vector<std::string> trail;
      trail.push_back("t=" + format_time(t_event) + ": " + ex.event_desc);
      for (std::int64_t i = static_cast<std::int64_t>(cur); i >= 0;
           i = table[static_cast<std::size_t>(i)].parent) {
        const StoredClass& c = table[static_cast<std::size_t>(i)];
        trail.push_back("t=" + format_time(c.t_abs) + ": " + c.event);
      }
      std::reverse(trail.begin(), trail.end());
      result.witness = std::move(trail);
      finish(result);
      return result;  // conclusive, like the enumerator's first deadlock
    }

    for (ClassState& succ : ex.successors) {
      ++result.transitions;
      insert(std::move(succ), t_event, table[cur].depth + 1,
             static_cast<std::int64_t>(cur),
             ex.event_desc.empty() ? "(quiescent)" : ex.event_desc);
    }
  }

  result.complete = true;
  finish(result);
  return result;
}

}  // namespace aadlsched::versa
