// Append-only storage with stable addresses, safe for concurrent readers.
//
// The hash-cons tables of the ACSR core are append-only: once an id is
// handed out, the entry behind it is immutable. A std::vector backing store
// breaks under concurrent exploration because a grow reallocates and
// invalidates every element mid-read. ChunkedVector stores elements in
// fixed-size chunks behind a preallocated spine of chunk pointers, so
//   * an element's address never changes once written, and
//   * a reader that holds a published index never touches memory that a
//     concurrent append is writing.
// Appends themselves are NOT synchronized here; tables serialize them with
// their own append mutex when running in shared mode. The synchronization
// contract is the usual hash-cons one: an index only reaches a reader
// through a lock-protected structure (an index shard bucket, the explorer's
// level barrier), which establishes the happens-before edge for the chunk
// contents.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>

namespace aadlsched::util {

template <typename T, std::size_t ChunkLog = 12, std::size_t MaxChunks = 1u << 15>
class ChunkedVector {
 public:
  static constexpr std::size_t kChunkSize = std::size_t{1} << ChunkLog;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;

  ChunkedVector() : spine_(new std::unique_ptr<T[]>[MaxChunks]) {}

  std::size_t size() const { return size_; }

  T& operator[](std::size_t i) {
    return spine_[i >> ChunkLog][i & kChunkMask];
  }
  const T& operator[](std::size_t i) const {
    return spine_[i >> ChunkLog][i & kChunkMask];
  }

  /// Append one element; returns its index.
  std::size_t push_back(T v) {
    const std::size_t i = size_;
    ensure_chunk(i);
    (*this)[i] = std::move(v);
    size_ = i + 1;
    return i;
  }

  /// Append `xs` contiguously (never straddling a chunk boundary, padding
  /// the current chunk when they do not fit); returns the start index.
  /// Requires xs.size() <= kChunkSize.
  std::size_t append_span(std::span<const T> xs) {
    if (xs.size() > kChunkSize)
      throw std::length_error("ChunkedVector::append_span: span too large");
    std::size_t start = size_;
    if ((start & kChunkMask) + xs.size() > kChunkSize)
      start = (start & ~kChunkMask) + kChunkSize;  // pad to next chunk
    if (!xs.empty()) {
      ensure_chunk(start);
      for (std::size_t k = 0; k < xs.size(); ++k) (*this)[start + k] = xs[k];
      size_ = start + xs.size();
    }
    return start;
  }

  /// View of a contiguous run produced by append_span.
  std::span<const T> view(std::size_t start, std::size_t len) const {
    if (len == 0) return {};
    return {&(*this)[start], len};
  }

 private:
  void ensure_chunk(std::size_t i) {
    const std::size_t c = i >> ChunkLog;
    if (c >= MaxChunks)
      throw std::length_error("ChunkedVector: capacity exhausted");
    if (!spine_[c]) spine_[c] = std::make_unique<T[]>(kChunkSize);
  }

  std::unique_ptr<std::unique_ptr<T[]>[]> spine_;
  std::size_t size_ = 0;
};

}  // namespace aadlsched::util
