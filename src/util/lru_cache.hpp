// Bounded LRU map: the in-memory tier of the analysis-result cache
// (src/server/cache.hpp) and generally useful for memoizing expensive
// derived values with a recency eviction policy.
//
// Classic list+map construction: a doubly-linked recency list holds the
// (key, value) pairs, the hash map points at list iterators (stable under
// splice). Not thread-safe by design — callers that share an LruCache hold
// their own lock, which they need anyway to make compound operations
// (lookup-then-insert) atomic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace aadlsched::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// `capacity` == 0 disables storage entirely (every put is dropped, every
  /// get misses) so a cache-less configuration needs no branching upstream.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Copy of the value, promoting the entry to most-recently-used.
  std::optional<Value> get(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Read-only probe without a recency update (for stats / tests).
  const Value* peek(const Key& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second->second;
  }

  bool contains(const Key& key) const { return map_.count(key) != 0; }

  /// Insert or overwrite; the entry becomes most-recently-used. Evicts the
  /// least-recently-used entry when over capacity.
  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
    if (map_.size() > capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// Remove an entry if present. Not counted as an eviction — eviction is
  /// capacity pressure, erase is an explicit invalidation.
  bool erase(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.erase(it->second);
    map_.erase(it);
    return true;
  }

  void clear() {
    map_.clear();
    order_.clear();
  }

 private:
  std::size_t capacity_;
  std::uint64_t evictions_ = 0;
  std::list<std::pair<Key, Value>> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      map_;
};

}  // namespace aadlsched::util
