// String interner: maps strings to dense 32-bit symbols and back.
//
// All names that flow through the pipeline (AADL component paths, ACSR event
// labels, resource names) are interned once so that the hot exploration loop
// compares and hashes u32 ids instead of strings.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace aadlsched::util {

/// Dense symbol id. Value 0 is reserved for the empty string, which is
/// always pre-interned, so a default-constructed Symbol is valid.
using Symbol = std::uint32_t;

class Interner {
 public:
  Interner();

  /// Intern a string; returns the existing symbol when already present.
  Symbol intern(std::string_view s);

  /// Look up without interning. Returns false when the string is unknown.
  bool lookup(std::string_view s, Symbol& out) const;

  /// Resolve a symbol back to its string. The reference stays valid for the
  /// lifetime of the interner (storage is a deque; never reallocated).
  const std::string& str(Symbol s) const {
    if (shared_) {
      std::lock_guard lk(mu_);
      return storage_.at(s);
    }
    return storage_.at(s);
  }

  std::size_t size() const { return storage_.size(); }

  /// Shared mode guards intern/lookup/str with a mutex so the parallel
  /// explorer's workers may resolve names concurrently. Names are all
  /// interned during translation, so this lock is cold during exploration.
  void set_shared_mode(bool shared) { shared_ = shared; }

 private:
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, Symbol> index_;
  mutable std::mutex mu_;
  bool shared_ = false;
};

}  // namespace aadlsched::util
