// Resource governance for long-running analyses.
//
// Exhaustive state-space exploration explodes without warning on non-trivial
// models; the production stance (ROADMAP) is that a run is *bounded and
// interruptible with usable partial results*, never a hung CLI or a dead
// sweep pool. Three pieces implement that:
//
//   * RunBudget — the caller's resource envelope: a wall-clock deadline, a
//     state cap, an approximate memory ceiling, and an optional CancelToken.
//     A default-constructed budget is unlimited, so existing callers pay
//     nothing.
//   * BudgetTracker — the hot-loop governor. check() is called once per
//     state expansion; it reads the cancel flag every call (one relaxed
//     atomic load) but polls the clock and the caller's memory estimator
//     only every kStride calls, so governance costs ~nothing on the BFS hot
//     path. Memory pressure is a *signal*, not a stop: the engine degrades
//     first (drops trace recording) and only gives up when pressure
//     persists after degradation.
//   * FaultInjector — deterministic fault injection so every bail-out path
//     is testable without timing races: armed programmatically or through
//     the AADLSCHED_FAULT environment variable, it trips the Nth budget
//     check (reporting a chosen StopReason), the Nth memory probe, or
//     throws from the Nth sweep job.
//
// Exploration that stops early reports a structured StopReason; the
// analyzer surfaces it as an explicit Inconclusive outcome (a capped run
// must never be read as "schedulable" — DESIGN.md §10).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string_view>

namespace aadlsched::util {

/// Why an analysis ended before exhausting the state space.
enum class StopReason : std::uint8_t {
  None,          // ran to completion (or to a conclusive deadlock)
  MaxStates,     // state cap reached
  Deadline,      // wall-clock deadline expired
  MemoryBudget,  // memory ceiling exceeded (after degradation)
  Cancelled,     // CancelToken flipped (e.g. SIGINT)
  Fault,         // injected or internal fault tripped the bail-out path
};

std::string_view to_string(StopReason r);

/// Cooperative cancellation flag, safe to flip from a signal handler or
/// another thread. Observed (not owned) by RunBudget.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Resource envelope for one analysis run. Zero means "unlimited" for every
/// numeric field, so a default RunBudget changes nothing.
struct RunBudget {
  double deadline_ms = 0;          // wall-clock limit for the run
  std::uint64_t max_states = 0;    // state cap (composes with the explorer's
                                   // own ExploreOptions::max_states)
  std::uint64_t memory_bytes = 0;  // approximate memory ceiling
  CancelToken* cancel = nullptr;   // observed, not owned; may be null

  bool unlimited() const noexcept {
    return deadline_ms <= 0 && max_states == 0 && memory_bytes == 0 &&
           cancel == nullptr;
  }
};

/// Deterministic fault injection. One global instance (armed once from
/// $AADLSCHED_FAULT) plus local instances for tests. Counters are atomic so
/// parallel-explorer workers may probe concurrently; exactly which worker
/// observes the Nth check depends on scheduling, but *some* check trips, so
/// every bail-out path is reachable on demand.
class FaultInjector {
 public:
  enum class Site : std::uint8_t {
    None,
    BudgetCheck,  // a BudgetTracker/worker budget check reports `reason`
    MemoryProbe,  // a memory probe reports pressure regardless of usage
    Job,          // a parallel_sweep job throws InjectedFault on entry
    // Filesystem sites (DESIGN.md §15): every disk I/O the server performs
    // can be made to fail deterministically, so the crash-safety of the
    // shared on-disk cache is testable without real disk damage. A tripped
    // write site abandons the tmp file mid-write (the torn-file case a
    // kill -9 produces); a tripped read site reports the read failed; a
    // tripped gc.remove leaves the file in place.
    CacheWrite,   // result store: writing the tmp file fails partway
    CacheRename,  // result store: the tmp -> final rename fails
    CacheRead,    // result store: reading a disk entry fails
    CkptWrite,    // checkpoint store: writing the tmp file fails partway
    CkptRead,     // checkpoint store: reading a .ckpt fails
    GcRemove,     // GC/eviction: fs::remove fails
  };

  FaultInjector() = default;

  /// Arm from a spec string "site:nth[:reason[:count]]", e.g.
  ///   budget-check:5:deadline     — 5th budget check reports Deadline
  ///   memory-probe:1              — first memory probe reports pressure
  ///   memory-probe:1:fault:1000   — pressure persists for 1000 probes
  ///   job:2                       — 2nd sweep job throws
  ///   cache.rename:1:fault:1000   — every result-store rename fails
  ///   ckpt.read:2                 — 2nd checkpoint disk read fails
  /// Empty spec disarms. Returns false (and disarms) on a malformed spec.
  bool arm(std::string_view spec);
  /// Arm programmatically: trip `count` consecutive probes starting with
  /// the nth (1-based) at `site`.
  void arm(Site site, std::uint64_t nth,
           StopReason reason = StopReason::Fault, std::uint64_t count = 1);
  void disarm();
  bool armed() const { return site_ != Site::None; }

  /// Budget-check hook: returns the reason to fake, or StopReason::None.
  StopReason trip_budget_check() noexcept;
  /// Memory-probe hook: true = report pressure.
  bool trip_memory_probe() noexcept;
  /// Sweep-job hook: throws InjectedFault when tripping.
  void maybe_throw_job();
  /// Filesystem hook: true = the I/O at `site` must fail. `site` must be
  /// one of the filesystem sites; counting is shared with every other site
  /// kind (one armed site per injector, like the other hooks).
  bool trip_io(Site site) noexcept { return hit(site); }

  /// Process-wide instance; arms itself from $AADLSCHED_FAULT on first use.
  static FaultInjector& global();

 private:
  bool hit(Site site) noexcept;

  Site site_ = Site::None;
  std::uint64_t nth_ = 0;    // 1-based index of the first tripping probe
  std::uint64_t count_ = 1;  // how many consecutive probes trip
  StopReason reason_ = StopReason::Fault;
  std::atomic<std::uint64_t> calls_{0};
};

/// Thrown by FaultInjector at Site::Job (and catchable like any job error
/// by the sweep isolation layer).
struct InjectedFault : std::runtime_error {
  InjectedFault() : std::runtime_error("injected fault (AADLSCHED_FAULT)") {}
};

enum class BudgetSignal : std::uint8_t {
  Proceed,         // within budget
  MemoryPressure,  // over the memory ceiling: degrade if possible
  Stop,            // out of budget: bail out with `reason`
};

struct BudgetStatus {
  BudgetSignal signal = BudgetSignal::Proceed;
  StopReason reason = StopReason::None;
};

/// Per-run governor. Single-threaded: owned by the (serial or coordinator)
/// exploration loop; parallel workers use cheaper per-block checks (cancel
/// token + deadline time-point + shared stop flag, see explorer.cpp).
class BudgetTracker {
 public:
  /// `memory_fn` estimates current footprint in bytes (sampled only on
  /// strided polls); may be empty when no ceiling is set.
  using MemoryFn = std::function<std::uint64_t()>;

  explicit BudgetTracker(const RunBudget& budget, MemoryFn memory_fn = {},
                         FaultInjector* injector = &FaultInjector::global());

  /// Hot-path check, call once per expansion. Cancel is checked every call;
  /// clock/memory every kStride calls (and on the first).
  BudgetStatus check(std::uint64_t states);
  /// Full check (clock + memory), for level boundaries.
  BudgetStatus check_now(std::uint64_t states);

  /// The engine degraded (dropped trace recording); the next sustained
  /// memory-pressure signal becomes a Stop instead of another degradation.
  void note_degraded() { degraded_ = true; }
  bool degraded() const { return degraded_; }

  double elapsed_ms() const;
  std::uint64_t last_memory_bytes() const { return last_memory_; }
  /// Deadline as a steady_clock time point, for worker-side checks.
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }
  bool has_deadline() const { return budget_.deadline_ms > 0; }

  static constexpr std::uint64_t kStride = 256;

 private:
  BudgetStatus full_check(std::uint64_t states);

  RunBudget budget_;
  MemoryFn memory_fn_;
  FaultInjector* injector_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point deadline_{};
  std::uint64_t calls_ = 0;
  std::uint64_t last_memory_ = 0;
  bool degraded_ = false;
};

}  // namespace aadlsched::util
