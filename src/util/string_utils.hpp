// Small string helpers used by the parsers and report renderers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aadlsched::util {

/// ASCII lowercase copy. AADL identifiers are case-insensitive, so the front
/// end folds everything through this before interning.
std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Split on a delimiter; empty fields preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Pads/truncates to a fixed width (for ASCII timeline rendering).
std::string pad_right(std::string_view s, std::size_t width);

/// Strict base-10 integer parse: optional sign, digits only, no leading or
/// trailing junk, range-checked. Returns nullopt on any violation (unlike
/// std::atoll, which silently accepts garbage). Used by CLI option parsing.
std::optional<std::int64_t> parse_int64(std::string_view s);

/// Escape a string for embedding in a JSON string literal (quotes,
/// backslash, control characters).
std::string json_escape(std::string_view s);

}  // namespace aadlsched::util
