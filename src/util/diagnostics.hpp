// Source locations and diagnostics for the AADL front end and the ACSR
// concrete-syntax parser. Mirrors the structure of a classic compiler
// diagnostic engine: diagnostics accumulate in a sink, callers decide when to
// render or abort.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace aadlsched::util {

/// 1-based line/column position inside a named buffer.
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  bool valid() const { return line != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

enum class Severity : std::uint8_t { Note, Warning, Error };

std::string_view to_string(Severity s);

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  /// "file:line:col: error: message" rendering.
  std::string render(std::string_view buffer_name) const;
};

/// Accumulating diagnostic sink.
class DiagnosticEngine {
 public:
  explicit DiagnosticEngine(std::string buffer_name = "<input>")
      : buffer_name_(std::move(buffer_name)) {}

  void report(Severity sev, SourceLoc loc, std::string message);
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }

  bool has_errors() const { return error_count_ > 0; }
  std::size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  const std::string& buffer_name() const { return buffer_name_; }

  /// All diagnostics rendered one per line.
  std::string render_all() const;

  void print(std::ostream& os) const;

 private:
  std::string buffer_name_;
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

}  // namespace aadlsched::util
