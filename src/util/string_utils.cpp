#include "util/string_utils.hpp"

#include <cctype>
#include <limits>

namespace aadlsched::util {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::optional<std::int64_t> parse_int64(std::string_view s) {
  std::size_t i = 0;
  bool negative = false;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) {
    negative = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) return std::nullopt;
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  std::int64_t value = 0;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return std::nullopt;
    const int digit = c - '0';
    // value * 10 + digit must not exceed kMax (negation of kMax + 1 is
    // representable, but rejecting INT64_MIN keeps the logic simple and no
    // CLI option needs it).
    if (value > (kMax - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return negative ? -value : value;
}

std::string json_escape(std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xf];
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

}  // namespace aadlsched::util
