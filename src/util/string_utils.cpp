#include "util/string_utils.hpp"

#include <cctype>

namespace aadlsched::util {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s)
    out.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

}  // namespace aadlsched::util
