// Sharded concurrent hash set of integer keys — the parallel explorer's
// visited set.
//
// Keys (TermIds) are split across power-of-two shards by the high bits of a
// splitmix64 hash; each shard is a small open-addressing table (linear
// probing) behind its own mutex. With 64 shards and a handful of workers,
// two threads only ever contend when they race to mark the *same region* of
// the state space visited, so the striped locks behave like CAS insertion
// in practice while keeping growth (rehash under the shard lock) trivial to
// reason about and ThreadSanitizer-clean.
//
// insert() is the only operation the BFS hot loop uses: it returns true for
// the thread that first claims a key, which is what makes the level-
// synchronous frontier duplicate-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/hash.hpp"

namespace aadlsched::util {

class ConcurrentSet {
 public:
  /// `shard_count` is rounded up to a power of two and clamped to [1, 256].
  /// `initial_capacity` is the expected total key count (split over shards).
  explicit ConcurrentSet(std::size_t initial_capacity = 1u << 16,
                         std::size_t shard_count = 64) {
    std::size_t shards = 1;
    while (shards < shard_count && shards < 256) shards <<= 1;
    shard_mask_ = shards - 1;
    shards_ = std::make_unique<Shard[]>(shards);
    std::size_t per_shard = 16;
    while (per_shard * shards < initial_capacity * 2) per_shard <<= 1;
    for (std::size_t s = 0; s < shards; ++s)
      shards_[s].slots.resize(per_shard, 0);
  }

  /// Claim `key`; returns true iff this call inserted it (first claimant).
  bool insert(std::uint64_t key) {
    const std::uint64_t h = mix64(key);
    Shard& sh = shards_[shard_of(h)];
    std::lock_guard lk(sh.mu);
    if (sh.count * 10 >= sh.slots.size() * 7) grow(sh);
    return insert_slot(sh, h, key + 1);
  }

  bool contains(std::uint64_t key) const {
    const std::uint64_t h = mix64(key);
    const Shard& sh = shards_[shard_of(h)];
    std::lock_guard lk(sh.mu);
    const std::size_t mask = sh.slots.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      const std::uint64_t s = sh.slots[i];
      if (s == 0) return false;
      if (s == key + 1) return true;
    }
  }

  /// Approximate footprint of the slot arrays, for the resource-governance
  /// memory estimate (util/budget.hpp). Takes each shard lock briefly.
  std::size_t approx_bytes() const {
    std::size_t n = 0;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      std::lock_guard lk(shards_[s].mu);
      n += shards_[s].slots.size() * sizeof(std::uint64_t);
    }
    return n + (shard_mask_ + 1) * sizeof(Shard);
  }

  /// Visit every key (per-shard lock; order is unspecified — sort the
  /// output if you need a stable sequence). Used by checkpoint capture,
  /// which runs while the worker pool is quiescent.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      std::lock_guard lk(shards_[s].mu);
      for (const std::uint64_t stored : shards_[s].slots)
        if (stored != 0) fn(stored - 1);
    }
  }

  /// Exact when no insert is concurrently in flight.
  std::size_t size() const {
    std::size_t n = 0;
    for (std::size_t s = 0; s <= shard_mask_; ++s) {
      std::lock_guard lk(shards_[s].mu);
      n += shards_[s].count;
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<std::uint64_t> slots;  // key + 1; 0 = empty
    std::size_t count = 0;
  };

  std::size_t shard_of(std::uint64_t h) const {
    // High bits pick the shard so the low bits stay independent for probing.
    return (h >> 56) & shard_mask_;
  }

  static bool insert_slot(Shard& sh, std::uint64_t h, std::uint64_t stored) {
    const std::size_t mask = sh.slots.size() - 1;
    for (std::size_t i = h & mask;; i = (i + 1) & mask) {
      if (sh.slots[i] == stored) return false;
      if (sh.slots[i] == 0) {
        sh.slots[i] = stored;
        ++sh.count;
        return true;
      }
    }
  }

  static void grow(Shard& sh) {
    std::vector<std::uint64_t> old = std::move(sh.slots);
    sh.slots.assign(old.size() * 2, 0);
    sh.count = 0;
    for (std::uint64_t stored : old)
      if (stored != 0) insert_slot(sh, mix64(stored - 1), stored);
  }

  std::unique_ptr<Shard[]> shards_;
  std::size_t shard_mask_ = 0;
};

}  // namespace aadlsched::util
