// Open-addressing hash containers over dense 32-bit ids.
//
// The exploration wavefront keys everything by acsr::TermId (a uint32), and
// the node-based std::unordered_map it used to sit in costs ~48-64 bytes of
// heap per entry plus a pointer chase per probe. These flat tables pack the
// same data into contiguous power-of-two arrays: one u32 slot per key for
// the set, parallel key/value arrays (SoA) for the map. Linear probing with
// a strong 64-bit mix keeps clusters short at the 0.7 max load factor.
//
// Both containers reserve 0xFFFFFFFF as the empty-slot sentinel; callers
// never insert it (it is acsr::kInvalidTerm, which is not a state). Neither
// supports erase — the visited set and parent map only grow, which is what
// makes tombstone-free linear probing safe.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/hash.hpp"

namespace aadlsched::util {

inline constexpr std::uint32_t kFlatEmptySlot = 0xFFFFFFFFu;

namespace detail {

inline std::size_t flat_capacity_for(std::size_t n) {
  // Smallest power of two that keeps n entries under 0.7 load.
  std::size_t cap = 16;
  while (cap * 7 < n * 10) cap <<= 1;
  return cap;
}

}  // namespace detail

/// Append-only set of 32-bit ids. insert() returns true when the id was
/// newly added — the same contract as unordered_map::emplace().second the
/// explorer relied on.
class FlatIdSet {
 public:
  FlatIdSet() { rehash(16); }

  void reserve(std::size_t n) {
    const std::size_t want = detail::flat_capacity_for(n);
    if (want > slots_.size()) rehash(want);
  }

  bool insert(std::uint32_t key) {
    assert(key != kFlatEmptySlot);
    if ((size_ + 1) * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
    std::size_t i = probe_start(key);
    while (true) {
      const std::uint32_t slot = slots_[i];
      if (slot == key) return false;
      if (slot == kFlatEmptySlot) {
        slots_[i] = key;
        ++size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  bool contains(std::uint32_t key) const {
    std::size_t i = probe_start(key);
    while (true) {
      const std::uint32_t slot = slots_[i];
      if (slot == key) return true;
      if (slot == kFlatEmptySlot) return false;
      i = (i + 1) & mask_;
    }
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.assign(slots_.size(), kFlatEmptySlot);
    size_ = 0;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const std::uint32_t slot : slots_)
      if (slot != kFlatEmptySlot) f(slot);
  }

  /// Actual table footprint: one u32 per slot, no per-entry heap nodes.
  std::size_t approx_bytes() const {
    return slots_.size() * sizeof(std::uint32_t);
  }

 private:
  std::size_t probe_start(std::uint32_t key) const {
    return static_cast<std::size_t>(util::mix64(key)) & mask_;
  }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint32_t> old = std::move(slots_);
    slots_.assign(new_cap, kFlatEmptySlot);
    mask_ = new_cap - 1;
    for (const std::uint32_t key : old) {
      if (key == kFlatEmptySlot) continue;
      std::size_t i = probe_start(key);
      while (slots_[i] != kFlatEmptySlot) i = (i + 1) & mask_;
      slots_[i] = key;
    }
  }

  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Append-only map from 32-bit id to V, stored as parallel arrays so a
/// probe touches only the key array until it hits.
template <typename V>
class FlatIdMap {
 public:
  FlatIdMap() { rehash(16); }

  void reserve(std::size_t n) {
    const std::size_t want = detail::flat_capacity_for(n);
    if (want > keys_.size()) rehash(want);
  }

  /// Insert (key, value) if the key is absent; returns true on insertion,
  /// false (leaving the existing value untouched) when already present.
  bool emplace(std::uint32_t key, V value) {
    assert(key != kFlatEmptySlot);
    if ((size_ + 1) * 10 > keys_.size() * 7) rehash(keys_.size() * 2);
    std::size_t i = probe_start(key);
    while (true) {
      const std::uint32_t slot = keys_[i];
      if (slot == key) return false;
      if (slot == kFlatEmptySlot) {
        keys_[i] = key;
        values_[i] = std::move(value);
        ++size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

  V* find(std::uint32_t key) {
    std::size_t i = probe_start(key);
    while (true) {
      const std::uint32_t slot = keys_[i];
      if (slot == key) return &values_[i];
      if (slot == kFlatEmptySlot) return nullptr;
      i = (i + 1) & mask_;
    }
  }
  const V* find(std::uint32_t key) const {
    return const_cast<FlatIdMap*>(this)->find(key);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    keys_.assign(keys_.size(), kFlatEmptySlot);
    values_.assign(values_.size(), V{});
    size_ = 0;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < keys_.size(); ++i)
      if (keys_[i] != kFlatEmptySlot) f(keys_[i], values_[i]);
  }

  std::size_t approx_bytes() const {
    return keys_.size() * (sizeof(std::uint32_t) + sizeof(V));
  }

 private:
  std::size_t probe_start(std::uint32_t key) const {
    return static_cast<std::size_t>(util::mix64(key)) & mask_;
  }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint32_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    keys_.assign(new_cap, kFlatEmptySlot);
    values_.assign(new_cap, V{});
    mask_ = new_cap - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kFlatEmptySlot) continue;
      std::size_t j = probe_start(old_keys[i]);
      while (keys_[j] != kFlatEmptySlot) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
  }

  std::vector<std::uint32_t> keys_;
  std::vector<V> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace aadlsched::util
