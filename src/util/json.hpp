// Minimal JSON support for the analysis service layer: a strict
// recursive-descent parser into a JsonValue tree (the daemon's request
// decoding, the client's response decoding, tests reading stats) and a
// stateful JsonWriter that gets commas, escaping and number formatting
// right once so the many hand-rolled `os << "{\"k\": ..."` renderers stop
// multiplying.
//
// Deliberately small: no streaming, no comments, no trailing commas, UTF-8
// passed through verbatim (\uXXXX escapes are decoded for BMP code points).
// Numbers that look integral parse as int64; everything else as double.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace aadlsched::util {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// std::map keeps object keys sorted — renders canonically, diffs cleanly.
  using Object = std::map<std::string, JsonValue>;
  using Data = std::variant<std::nullptr_t, bool, std::int64_t, double,
                            std::string, Array, Object>;

  JsonValue() : data_(nullptr) {}
  JsonValue(Data d) : data_(std::move(d)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? std::get<bool>(data_) : fallback;
  }
  std::int64_t as_int(std::int64_t fallback = 0) const {
    if (is_int()) return std::get<std::int64_t>(data_);
    if (is_double()) return static_cast<std::int64_t>(std::get<double>(data_));
    return fallback;
  }
  double as_double(double fallback = 0) const {
    if (is_double()) return std::get<double>(data_);
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
    return fallback;
  }
  const std::string& as_string() const {
    static const std::string empty;
    return is_string() ? std::get<std::string>(data_) : empty;
  }
  const Array& as_array() const {
    static const Array empty;
    return is_array() ? std::get<Array>(data_) : empty;
  }
  const Object& as_object() const {
    static const Object empty;
    return is_object() ? std::get<Object>(data_) : empty;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;

  Data& data() { return data_; }
  const Data& data() const { return data_; }

 private:
  Data data_;
};

/// Strict parse of a complete JSON document (surrounding whitespace
/// allowed, trailing garbage rejected). On failure returns nullopt and, if
/// `error` is non-null, a human-readable reason with byte offset.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

/// Append-only JSON renderer with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("states").value(std::uint64_t{42});
///   w.key("outcome").value("schedulable");
///   w.end_object();
///   std::string json = std::move(w).str();
///
/// value(double) renders with %.6g (stable, locale-independent); raw()
/// splices pre-rendered JSON (e.g. a cached result object) verbatim.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& null();
  JsonWriter& raw(std::string_view pre_rendered_json);

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  void comma_for_value();

  std::string out_;
  // One char per open scope: 'o'/'O' object (empty/nonempty), 'a'/'A'
  // array, 'k' pending key (value must follow).
  std::string stack_;
};

}  // namespace aadlsched::util
