#include "util/thread_pool.hpp"

#include <algorithm>

namespace aadlsched::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0)
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) submit([i, &fn] { fn(i); });
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lk(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace aadlsched::util
