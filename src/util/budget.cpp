#include "util/budget.hpp"

#include <cstdlib>
#include <optional>

#include "util/string_utils.hpp"

namespace aadlsched::util {

namespace {

using Clock = std::chrono::steady_clock;

std::optional<FaultInjector::Site> parse_site(std::string_view s) {
  if (s == "budget-check") return FaultInjector::Site::BudgetCheck;
  if (s == "memory-probe") return FaultInjector::Site::MemoryProbe;
  if (s == "job") return FaultInjector::Site::Job;
  if (s == "cache.write") return FaultInjector::Site::CacheWrite;
  if (s == "cache.rename") return FaultInjector::Site::CacheRename;
  if (s == "cache.read") return FaultInjector::Site::CacheRead;
  if (s == "ckpt.write") return FaultInjector::Site::CkptWrite;
  if (s == "ckpt.read") return FaultInjector::Site::CkptRead;
  if (s == "gc.remove") return FaultInjector::Site::GcRemove;
  return std::nullopt;
}

std::optional<StopReason> parse_reason(std::string_view s) {
  if (s == "max-states") return StopReason::MaxStates;
  if (s == "deadline") return StopReason::Deadline;
  if (s == "memory") return StopReason::MemoryBudget;
  if (s == "cancelled") return StopReason::Cancelled;
  if (s == "fault") return StopReason::Fault;
  return std::nullopt;
}

}  // namespace

std::string_view to_string(StopReason r) {
  switch (r) {
    case StopReason::None: return "none";
    case StopReason::MaxStates: return "max-states";
    case StopReason::Deadline: return "deadline";
    case StopReason::MemoryBudget: return "memory-budget";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::Fault: return "fault";
  }
  return "?";
}

bool FaultInjector::arm(std::string_view spec) {
  disarm();
  if (spec.empty()) return true;

  // Split "site:nth[:reason[:count]]" on ':'.
  std::string_view parts[4];
  std::size_t n = 0;
  while (n < 4) {
    const std::size_t colon = spec.find(':');
    parts[n++] = spec.substr(0, colon);
    if (colon == std::string_view::npos) break;
    spec.remove_prefix(colon + 1);
  }
  if (n < 2) return false;

  const auto site = parse_site(parts[0]);
  const auto nth = parse_int64(parts[1]);
  if (!site || !nth || *nth < 1) return false;
  StopReason reason = StopReason::Fault;
  std::uint64_t count = 1;
  if (n >= 3) {
    const auto r = parse_reason(parts[2]);
    if (!r) return false;
    reason = *r;
  }
  if (n >= 4) {
    const auto c = parse_int64(parts[3]);
    if (!c || *c < 1) return false;
    count = static_cast<std::uint64_t>(*c);
  }
  arm(*site, static_cast<std::uint64_t>(*nth), reason, count);
  return true;
}

void FaultInjector::arm(Site site, std::uint64_t nth, StopReason reason,
                        std::uint64_t count) {
  site_ = site;
  nth_ = nth;
  reason_ = reason;
  count_ = count;
  calls_.store(0, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  site_ = Site::None;
  nth_ = 0;
  count_ = 1;
  reason_ = StopReason::Fault;
  calls_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::hit(Site site) noexcept {
  if (site_ != site) return false;
  const std::uint64_t k = calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  return k >= nth_ && k < nth_ + count_;
}

StopReason FaultInjector::trip_budget_check() noexcept {
  return hit(Site::BudgetCheck) ? reason_ : StopReason::None;
}

bool FaultInjector::trip_memory_probe() noexcept {
  return hit(Site::MemoryProbe);
}

void FaultInjector::maybe_throw_job() {
  if (hit(Site::Job)) throw InjectedFault{};
}

FaultInjector& FaultInjector::global() {
  static FaultInjector* instance = [] {
    auto* fi = new FaultInjector;  // leaked intentionally (process-lifetime)
    if (const char* spec = std::getenv("AADLSCHED_FAULT")) fi->arm(spec);
    return fi;
  }();
  return *instance;
}

BudgetTracker::BudgetTracker(const RunBudget& budget, MemoryFn memory_fn,
                             FaultInjector* injector)
    : budget_(budget),
      memory_fn_(std::move(memory_fn)),
      injector_(injector),
      start_(Clock::now()) {
  if (budget_.deadline_ms > 0)
    deadline_ = start_ + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 budget_.deadline_ms));
}

double BudgetTracker::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - start_)
      .count();
}

BudgetStatus BudgetTracker::check(std::uint64_t states) {
  // Cancellation must be prompt: one relaxed load per expansion.
  if (budget_.cancel && budget_.cancel->cancelled())
    return {BudgetSignal::Stop, StopReason::Cancelled};
  if (budget_.max_states != 0 && states >= budget_.max_states)
    return {BudgetSignal::Stop, StopReason::MaxStates};
  if (++calls_ % kStride != 1) return {};
  return full_check(states);
}

BudgetStatus BudgetTracker::check_now(std::uint64_t states) {
  if (budget_.cancel && budget_.cancel->cancelled())
    return {BudgetSignal::Stop, StopReason::Cancelled};
  if (budget_.max_states != 0 && states >= budget_.max_states)
    return {BudgetSignal::Stop, StopReason::MaxStates};
  return full_check(states);
}

BudgetStatus BudgetTracker::full_check(std::uint64_t states) {
  (void)states;
  if (injector_) {
    const StopReason injected = injector_->trip_budget_check();
    if (injected != StopReason::None) {
      // Injected memory pressure goes through the degradation path like the
      // real thing; everything else is a hard stop.
      if (injected == StopReason::MemoryBudget && !degraded_)
        return {BudgetSignal::MemoryPressure, StopReason::MemoryBudget};
      return {BudgetSignal::Stop, injected};
    }
  }
  if (budget_.deadline_ms > 0 && Clock::now() >= deadline_)
    return {BudgetSignal::Stop, StopReason::Deadline};

  const bool probe_faulted =
      injector_ != nullptr && injector_->trip_memory_probe();
  if (budget_.memory_bytes != 0 || probe_faulted) {
    if (memory_fn_) last_memory_ = memory_fn_();
    const bool over = probe_faulted ||
                      (budget_.memory_bytes != 0 &&
                       last_memory_ > budget_.memory_bytes);
    if (over)
      return {degraded_ ? BudgetSignal::Stop : BudgetSignal::MemoryPressure,
              StopReason::MemoryBudget};
  }
  return {};
}

}  // namespace aadlsched::util
