#include "util/diagnostics.hpp"

#include <ostream>
#include <sstream>

namespace aadlsched::util {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::render(std::string_view buffer_name) const {
  std::ostringstream os;
  os << buffer_name;
  if (loc.valid()) os << ':' << loc.line << ':' << loc.column;
  os << ": " << to_string(severity) << ": " << message;
  return os.str();
}

void DiagnosticEngine::report(Severity sev, SourceLoc loc,
                              std::string message) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, loc, std::move(message)});
}

std::string DiagnosticEngine::render_all() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += d.render(buffer_name_);
    out += '\n';
  }
  return out;
}

void DiagnosticEngine::print(std::ostream& os) const { os << render_all(); }

}  // namespace aadlsched::util
