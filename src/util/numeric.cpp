#include "util/numeric.hpp"

namespace aadlsched::util {

std::optional<std::int64_t> checked_lcm(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = gcd64(a, b);
  const std::int64_t a_over_g = a / g;
  std::int64_t result = 0;
  if (__builtin_mul_overflow(a_over_g, b, &result)) return std::nullopt;
  return result < 0 ? -result : result;
}

std::optional<std::int64_t> hyperperiod(
    std::span<const std::int64_t> periods) {
  if (periods.empty()) return std::nullopt;
  std::int64_t acc = 1;
  for (std::int64_t p : periods) {
    auto l = checked_lcm(acc, p);
    if (!l) return std::nullopt;
    acc = *l;
  }
  return acc;
}

}  // namespace aadlsched::util
