// Minimal work-stealing-free thread pool used by the parallel state-space
// explorer. The explorer drives the pool in bulk-synchronous rounds (one BFS
// frontier per round), so a simple shared queue with a condition variable is
// both sufficient and easy to reason about.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aadlsched::util {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueue a task. Tasks must not throw (the pool terminates on escape).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace aadlsched::util
