// Integer helpers for timing arithmetic (hyperperiods, ceilings). All task
// timing in this codebase is in integral scheduling quanta (the paper's
// discrete-time assumption, §4.1), so everything here is exact.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace aadlsched::util {

constexpr std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

/// lcm that reports overflow instead of wrapping; nullopt on overflow.
std::optional<std::int64_t> checked_lcm(std::int64_t a, std::int64_t b);

/// Hyperperiod (lcm) of a set of periods; nullopt on overflow or empty set.
std::optional<std::int64_t> hyperperiod(std::span<const std::int64_t> periods);

/// ceil(a / b) for positive b.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace aadlsched::util
