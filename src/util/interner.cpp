#include "util/interner.hpp"

namespace aadlsched::util {

Interner::Interner() { intern(""); }

Symbol Interner::intern(std::string_view s) {
  std::unique_lock<std::mutex> lk;
  if (shared_) lk = std::unique_lock(mu_);
  if (auto it = index_.find(s); it != index_.end()) return it->second;
  const Symbol id = static_cast<Symbol>(storage_.size());
  storage_.emplace_back(s);
  index_.emplace(std::string_view{storage_.back()}, id);
  return id;
}

bool Interner::lookup(std::string_view s, Symbol& out) const {
  std::unique_lock<std::mutex> lk;
  if (shared_) lk = std::unique_lock(mu_);
  auto it = index_.find(s);
  if (it == index_.end()) return false;
  out = it->second;
  return true;
}

}  // namespace aadlsched::util
