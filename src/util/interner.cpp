#include "util/interner.hpp"

namespace aadlsched::util {

Interner::Interner() { intern(""); }

Symbol Interner::intern(std::string_view s) {
  if (auto it = index_.find(s); it != index_.end()) return it->second;
  const Symbol id = static_cast<Symbol>(storage_.size());
  storage_.emplace_back(s);
  index_.emplace(std::string_view{storage_.back()}, id);
  return id;
}

bool Interner::lookup(std::string_view s, Symbol& out) const {
  auto it = index_.find(s);
  if (it == index_.end()) return false;
  out = it->second;
  return true;
}

}  // namespace aadlsched::util
