#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/string_utils.hpp"

namespace aadlsched::util {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& obj = std::get<Object>(data_);
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    auto v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(const std::string& why) {
    if (error_ && error_->empty())
      *error_ = why + " at byte " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return JsonValue(JsonValue::Data(std::move(*s)));
      }
      case 't':
        if (literal("true")) return JsonValue(JsonValue::Data(true));
        break;
      case 'f':
        if (literal("false")) return JsonValue(JsonValue::Data(false));
        break;
      case 'n':
        if (literal("null")) return JsonValue(JsonValue::Data(nullptr));
        break;
      default: return parse_number();
    }
    fail("unexpected character");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_object(int depth) {
    ++pos_;  // '{'
    JsonValue::Object obj;
    skip_ws();
    if (eat('}')) return JsonValue(JsonValue::Data(std::move(obj)));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      skip_ws();
      auto val = parse_value(depth + 1);
      if (!val) return std::nullopt;
      obj.insert_or_assign(std::move(*key), std::move(*val));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return JsonValue(JsonValue::Data(std::move(obj)));
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array(int depth) {
    ++pos_;  // '['
    JsonValue::Array arr;
    skip_ws();
    if (eat(']')) return JsonValue(JsonValue::Data(std::move(arr)));
    while (true) {
      skip_ws();
      auto val = parse_value(depth + 1);
      if (!val) return std::nullopt;
      arr.push_back(std::move(*val));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return JsonValue(JsonValue::Data(std::move(arr)));
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("unescaped control character in string");
          return std::nullopt;
        }
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          const auto hex4 = [&](unsigned& value) {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            value = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad hex digit in \\u escape");
                return false;
              }
            }
            return true;
          };
          unsigned cp = 0;
          if (!hex4(cp)) return std::nullopt;
          // Surrogate pairs (RFC 8259 §7): a high surrogate must be followed
          // by "\uDC00".."\uDFFF"; together they name one supplementary code
          // point, emitted as a single 4-byte UTF-8 sequence. A lone
          // surrogate in either position names no character at all and is a
          // parse error — silently emitting it produced invalid UTF-8
          // (CESU-8-style 3-byte surrogate encodings) downstream.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("lone high surrogate in \\u escape");
              return std::nullopt;
            }
            pos_ += 2;
            unsigned lo = 0;
            if (!hex4(lo)) return std::nullopt;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail("high surrogate not followed by a low surrogate");
              return std::nullopt;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
            return std::nullopt;
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape sequence");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (eat('-')) {}
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    bool integral = true;
    if (eat('.')) {
      integral = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") {
      fail("expected a value");
      return std::nullopt;
    }
    if (integral) {
      if (const auto n = parse_int64(tok))
        return JsonValue(JsonValue::Data(*n));
      // Integral-looking but out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const std::string buf(tok);
    const double d = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size() || errno == ERANGE) {
      fail("malformed number");
      return std::nullopt;
    }
    return JsonValue(JsonValue::Data(d));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  if (error) error->clear();
  return JsonParser(text, error).run();
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void JsonWriter::comma_for_value() {
  if (stack_.empty()) return;
  char& top = stack_.back();
  if (top == 'k') {
    stack_.pop_back();  // the pending key is consumed by this value
  } else if (top == 'A') {
    out_ += ", ";
  } else if (top == 'a') {
    top = 'A';
  }
  // 'o'/'O': a bare value inside an object without key() is a caller bug;
  // the output will be malformed JSON, which the tests catch immediately.
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  stack_ += 'o';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!stack_.empty()) stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  stack_ += 'a';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!stack_.empty()) stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!stack_.empty() && stack_.back() == 'O') out_ += ", ";
  if (!stack_.empty() && stack_.back() == 'o') stack_.back() = 'O';
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\": ";
  stack_ += 'k';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view pre_rendered_json) {
  comma_for_value();
  out_ += pre_rendered_json;
  return *this;
}

}  // namespace aadlsched::util
