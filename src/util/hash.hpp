// Hashing helpers shared by the hash-consing tables in the ACSR core and the
// explorer's seen-set. All hashes are deterministic across runs so that state
// counts reported by benches are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

namespace aadlsched::util {

/// 64-bit FNV-1a over an arbitrary byte range.
constexpr std::uint64_t fnv1a(std::span<const std::byte> bytes,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr std::uint64_t fnv1a(std::string_view s,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Strong 64-bit mixer (splitmix64 finalizer). Used to decorrelate ids that
/// are small consecutive integers before combining.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combine in the boost::hash_combine style, but 64-bit.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash a span of trivially hashable integers.
template <typename T>
constexpr std::uint64_t hash_span(std::span<const T> xs, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const T& x : xs) h = hash_combine(h, static_cast<std::uint64_t>(x));
  return h;
}

}  // namespace aadlsched::util
