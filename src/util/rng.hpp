// Deterministic PRNG for workload generation. We avoid std::mt19937 because
// its state/seed behaviour differs subtly across library versions; workload
// tables in EXPERIMENTS.md must be byte-for-byte reproducible.
#pragma once

#include <cstdint>

namespace aadlsched::util {

/// splitmix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, tiny state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  constexpr std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full range
    // Rejection-free Lemire reduction; bias is negligible for our spans but
    // we keep the multiply-shift for determinism and speed.
    const unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * span;
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace aadlsched::util
