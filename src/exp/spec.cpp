#include "exp/spec.hpp"

#include <cmath>

#include "core/analyzer.hpp"
#include "sched/workload.hpp"
#include "util/json.hpp"

namespace aadlsched::exp {

namespace {

using util::JsonValue;

bool known_policy(const std::string& p) {
  return p == "rm" || p == "dm" || p == "edf" || p == "llf";
}

/// Read an optional array member into `out` via `one` (element decoder,
/// false = shape error). A present-but-not-array member or an empty array
/// is a spec error; an absent member keeps the default.
template <typename T, typename Fn>
bool read_axis(const JsonValue& obj, const char* key, std::vector<T>& out,
               std::string& error, Fn one) {
  const JsonValue* v = obj.get(key);
  if (!v) return true;
  if (!v->is_array() || v->as_array().empty()) {
    error = std::string("'") + key + "' must be a non-empty array";
    return false;
  }
  out.clear();
  for (const JsonValue& el : v->as_array()) {
    T value{};
    if (!one(el, value)) {
      error = std::string("invalid element in '") + key + "'";
      return false;
    }
    out.push_back(std::move(value));
  }
  return true;
}

}  // namespace

std::optional<ExperimentSpec> parse_experiment_spec(const std::string& text,
                                                    std::string& error) {
  const auto doc = util::parse_json(text, &error);
  if (!doc) {
    error = "spec is not valid JSON: " + error;
    return std::nullopt;
  }
  if (!doc->is_object()) {
    error = "spec must be a JSON object";
    return std::nullopt;
  }

  ExperimentSpec spec;
  if (const JsonValue* v = doc->get("name"); v && v->is_string())
    spec.name = v->as_string();

  const JsonValue empty_grid{JsonValue::Object{}};
  const JsonValue* grid = doc->get("grid");
  if (!grid) grid = &empty_grid;
  if (!grid->is_object()) {
    error = "'grid' must be an object";
    return std::nullopt;
  }

  const auto str = [](const JsonValue& el, std::string& out) {
    if (!el.is_string()) return false;
    out = el.as_string();
    return true;
  };
  const auto num = [](const JsonValue& el, double& out) {
    if (!el.is_number()) return false;
    out = el.as_double();
    return true;
  };
  const auto count = [](const JsonValue& el, std::size_t& out) {
    if (!el.is_int() || el.as_int() < 0) return false;
    out = static_cast<std::size_t>(el.as_int());
    return true;
  };
  const auto int64 = [](const JsonValue& el, std::int64_t& out) {
    if (!el.is_int()) return false;
    out = el.as_int();
    return true;
  };
  const auto int32 = [](const JsonValue& el, int& out) {
    if (!el.is_int()) return false;
    out = static_cast<int>(el.as_int());
    return true;
  };

  if (!read_axis(*grid, "policy", spec.policies, error, str) ||
      !read_axis(*grid, "utilization", spec.utilizations, error, num) ||
      !read_axis(*grid, "task_count", spec.task_counts, error, count) ||
      !read_axis(*grid, "deadline_fraction", spec.deadline_fractions, error,
                 num) ||
      !read_axis(*grid, "quantum_ms", spec.quantum_ms, error, int64) ||
      !read_axis(*grid, "engine", spec.engines, error, str) ||
      !read_axis(*grid, "processors", spec.processors, error, int32))
    return std::nullopt;

  if (const JsonValue* seeds = doc->get("seeds")) {
    if (!seeds->is_object()) {
      error = "'seeds' must be an object {begin, count}";
      return std::nullopt;
    }
    if (const JsonValue* v = seeds->get("begin"); v && v->is_int())
      spec.seed_begin = static_cast<std::uint64_t>(v->as_int());
    if (const JsonValue* v = seeds->get("count"); v && v->is_int()) {
      if (v->as_int() < 1) {
        error = "'seeds.count' must be >= 1";
        return std::nullopt;
      }
      spec.seed_count = static_cast<std::uint64_t>(v->as_int());
    }
  }

  if (const JsonValue* v = doc->get("periods")) {
    if (!v->is_array()) {
      error = "'periods' must be an array of quanta";
      return std::nullopt;
    }
    spec.periods.clear();
    for (const JsonValue& el : v->as_array()) {
      if (!el.is_int()) {
        error = "'periods' must contain integers (quanta)";
        return std::nullopt;
      }
      spec.periods.push_back(el.as_int());
    }
  }

  if (const JsonValue* budget = doc->get("budget")) {
    if (!budget->is_object()) {
      error = "'budget' must be an object";
      return std::nullopt;
    }
    if (budget->get("deadline_ms")) {
      error =
          "'budget.deadline_ms' is not supported: wall-clock budgets make "
          "verdicts machine-dependent and break the in-process/daemon "
          "agreement contract; use 'budget.max_states'";
      return std::nullopt;
    }
    if (const JsonValue* v = budget->get("max_states"); v && v->is_int()) {
      if (v->as_int() < 1) {
        error = "'budget.max_states' must be >= 1";
        return std::nullopt;
      }
      spec.max_states = static_cast<std::uint64_t>(v->as_int());
    }
  }

  if (const JsonValue* v = doc->get("lint"); v && v->is_bool())
    spec.run_lint = v->as_bool();
  if (const JsonValue* v = doc->get("no_reduction"); v && v->is_bool())
    spec.no_reduction = v->as_bool();
  if (const JsonValue* v = doc->get("bin_width"); v && v->is_number())
    spec.bin_width = v->as_double();
  if (const JsonValue* v = doc->get("workers"); v && v->is_int())
    spec.workers = static_cast<std::size_t>(v->as_int());

  // --- semantic validation ------------------------------------------------
  for (const std::string& p : spec.policies)
    if (!known_policy(p)) {
      error = "unknown policy '" + p + "' (expected rm, dm, edf or llf)";
      return std::nullopt;
    }
  for (const std::string& e : spec.engines)
    if (!core::engine_from_string(e)) {
      error = "unknown engine '" + e +
              "' (expected enumerative, symbolic or auto)";
      return std::nullopt;
    }
  for (const double u : spec.utilizations)
    if (!(u > 0) || !std::isfinite(u)) {
      error = "utilization axis values must be finite and > 0";
      return std::nullopt;
    }
  for (const double f : spec.deadline_fractions)
    if (!(f >= 0.0 && f <= 1.0)) {
      error = "deadline_fraction axis values must lie in [0, 1]";
      return std::nullopt;
    }
  for (const std::int64_t q : spec.quantum_ms)
    if (q < 1) {
      error = "quantum_ms axis values must be >= 1";
      return std::nullopt;
    }
  for (const int p : spec.processors)
    if (p < 1) {
      error = "processors axis values must be >= 1";
      return std::nullopt;
    }
  if (!(spec.bin_width > 0) || !std::isfinite(spec.bin_width)) {
    error = "'bin_width' must be finite and > 0";
    return std::nullopt;
  }

  // The workload generator is the authority on generability: run its
  // validator once per (task_count, utilization, deadline_fraction) corner
  // so an ungenerable axis combination (most importantly an empty or
  // zero-valued period set) is a spec-load error with the generator's own
  // diagnostic, not a thousand per-model failures later.
  for (const std::size_t n : spec.task_counts)
    for (const double u : spec.utilizations)
      for (const double f : spec.deadline_fractions) {
        sched::WorkloadSpec ws;
        ws.task_count = n;
        ws.total_utilization = u;
        ws.deadline_fraction = f;
        ws.periods = spec.periods;
        if (const auto bad = sched::validate_workload_spec(ws)) {
          error = "ungenerable workload spec: " + *bad;
          return std::nullopt;
        }
      }

  return spec;
}

std::vector<Cell> expand_grid(const ExperimentSpec& spec) {
  std::vector<Cell> cells;
  cells.reserve(spec.policies.size() * spec.utilizations.size() *
                spec.task_counts.size() * spec.deadline_fractions.size() *
                spec.quantum_ms.size() * spec.engines.size() *
                spec.processors.size());
  for (const std::string& policy : spec.policies)
    for (const double u : spec.utilizations)
      for (const std::size_t n : spec.task_counts)
        for (const double f : spec.deadline_fractions)
          for (const std::int64_t q : spec.quantum_ms)
            for (const std::string& engine : spec.engines)
              for (const int procs : spec.processors)
                cells.push_back({policy, u, n, f, q, engine, procs});
  return cells;
}

}  // namespace aadlsched::exp
