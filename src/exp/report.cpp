#include "exp/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "util/json.hpp"

namespace aadlsched::exp {

namespace {

using util::JsonWriter;

struct Tally {
  std::size_t schedulable = 0;
  std::size_t not_schedulable = 0;
  std::size_t inconclusive = 0;
  std::size_t error = 0;

  std::size_t total() const {
    return schedulable + not_schedulable + inconclusive + error;
  }
  void add(const std::string& outcome) {
    if (outcome == "schedulable")
      ++schedulable;
    else if (outcome == "not-schedulable")
      ++not_schedulable;
    else if (outcome == "inconclusive")
      ++inconclusive;
    else
      ++error;
  }
  void render(JsonWriter& w) const {
    w.begin_object();
    w.key("schedulable").value(std::uint64_t{schedulable});
    w.key("not_schedulable").value(std::uint64_t{not_schedulable});
    w.key("inconclusive").value(std::uint64_t{inconclusive});
    w.key("error").value(std::uint64_t{error});
    w.end_object();
  }
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void render_cell_axes(JsonWriter& w, const Cell& c) {
  w.key("policy").value(c.policy);
  w.key("utilization").value(c.utilization);
  w.key("task_count").value(std::uint64_t{c.task_count});
  w.key("deadline_fraction").value(c.deadline_fraction);
  w.key("quantum_ms").value(c.quantum_ms);
  w.key("engine").value(c.engine);
  w.key("processors").value(c.processors);
}

}  // namespace

std::string render_report(const ExperimentSpec& spec,
                          const ExperimentResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kReportSchemaVersion);
  w.key("name").value(spec.name);
  w.key("backend").value(result.backend);

  w.key("grid").begin_object();
  w.key("policy").begin_array();
  for (const auto& p : spec.policies) w.value(p);
  w.end_array();
  w.key("utilization").begin_array();
  for (const double u : spec.utilizations) w.value(u);
  w.end_array();
  w.key("task_count").begin_array();
  for (const std::size_t n : spec.task_counts) w.value(std::uint64_t{n});
  w.end_array();
  w.key("deadline_fraction").begin_array();
  for (const double f : spec.deadline_fractions) w.value(f);
  w.end_array();
  w.key("quantum_ms").begin_array();
  for (const std::int64_t q : spec.quantum_ms) w.value(q);
  w.end_array();
  w.key("engine").begin_array();
  for (const auto& e : spec.engines) w.value(e);
  w.end_array();
  w.key("processors").begin_array();
  for (const int p : spec.processors) w.value(p);
  w.end_array();
  w.key("seeds").begin_object();
  w.key("begin").value(spec.seed_begin);
  w.key("count").value(spec.seed_count);
  w.end_object();
  w.key("max_states").value(spec.max_states);
  w.key("lint").value(spec.run_lint);
  w.key("no_reduction").value(spec.no_reduction);
  w.key("bin_width").value(spec.bin_width);
  w.end_object();

  Tally totals;
  // Realized-utilization histogram over all generated runs: bin index ->
  // (runs, schedulable). Binning by the realized value, not the requested
  // axis point, is the whole reason TaskSet records its drift — quantized
  // WCETs silently move task sets between bins (workload.hpp).
  std::map<std::int64_t, std::pair<std::size_t, std::size_t>> curve;

  w.key("cells").begin_array();
  for (const CellResult& cr : result.cells) {
    w.begin_object();
    render_cell_axes(w, cr.cell);

    Tally tally;
    std::map<std::string, std::size_t> decided;
    std::vector<double> latencies;
    std::size_t cached = 0, transport = 0;
    for (const RunOutcome& run : cr.runs) {
      tally.add(run.outcome);
      totals.add(run.outcome);
      ++decided[run.decided_by_class];
      if (run.generated && !run.transport_failed) {
        latencies.push_back(run.latency_ms);
        if (run.cached) ++cached;
      }
      if (run.transport_failed) ++transport;
      if (run.generated) {
        const auto bin = static_cast<std::int64_t>(
            std::floor(run.realized_utilization / spec.bin_width));
        auto& [n, sched] = curve[bin];
        ++n;
        if (run.outcome == "schedulable") ++sched;
      }
    }

    w.key("verdicts").begin_object();
    w.key("runs").begin_array();
    for (const RunOutcome& run : cr.runs) {
      w.begin_object();
      w.key("seed").value(run.seed);
      w.key("outcome").value(run.outcome);
      w.key("decided_by").value(run.decided_by_class);
      if (!run.decided_by_ids.empty())
        w.key("decided_by_ids").value(run.decided_by_ids);
      w.key("realized_utilization").value(run.realized_utilization);
      w.key("drift").value(run.drift);
      w.end_object();
    }
    w.end_array();
    w.key("outcomes");
    tally.render(w);
    w.key("acceptance")
        .value(tally.total() == 0
                   ? 0.0
                   : static_cast<double>(tally.schedulable) /
                         static_cast<double>(tally.total()));
    w.key("decided_by").begin_object();
    for (const auto& [cls, n] : decided) w.key(cls).value(std::uint64_t{n});
    w.end_object();
    w.end_object();  // verdicts

    std::sort(latencies.begin(), latencies.end());
    w.key("timing").begin_object();
    double sum = 0;
    for (const double ms : latencies) sum += ms;
    w.key("mean_ms").value(latencies.empty() ? 0.0
                                             : sum / static_cast<double>(
                                                         latencies.size()));
    w.key("p50_ms").value(percentile(latencies, 0.50));
    w.key("p95_ms").value(percentile(latencies, 0.95));
    w.key("max_ms").value(latencies.empty() ? 0.0 : latencies.back());
    w.key("cached").value(std::uint64_t{cached});
    w.key("transport_failures").value(std::uint64_t{transport});
    w.end_object();

    w.end_object();  // cell
  }
  w.end_array();

  w.key("curve").begin_array();
  for (const auto& [bin, counts] : curve) {
    const auto& [n, sched] = counts;
    w.begin_object();
    w.key("bin_lo").value(static_cast<double>(bin) * spec.bin_width);
    w.key("bin_hi").value(static_cast<double>(bin + 1) * spec.bin_width);
    w.key("runs").value(std::uint64_t{n});
    w.key("schedulable").value(std::uint64_t{sched});
    w.key("acceptance")
        .value(n == 0 ? 0.0
                      : static_cast<double>(sched) / static_cast<double>(n));
    w.end_object();
  }
  w.end_array();

  w.key("totals");
  totals.render(w);
  w.key("transport").begin_object();
  w.key("failures").value(std::uint64_t{result.transport_failures});
  w.end_object();
  w.key("timing").begin_object();
  w.key("total_ms").value(result.total_ms);
  w.key("models_per_sec")
      .value(result.total_ms > 0
                 ? static_cast<double>(result.total_runs) /
                       (result.total_ms / 1000.0)
                 : 0.0);
  w.end_object();
  w.end_object();
  return std::move(w).str() + "\n";
}

}  // namespace aadlsched::exp
