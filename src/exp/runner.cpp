#include "exp/runner.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>

#include "core/analyzer.hpp"
#include "core/taskset_aadl.hpp"
#include "sched/workload.hpp"
#include "server/service.hpp"
#include "util/json.hpp"
#include "versa/sweep.hpp"

namespace aadlsched::exp {

namespace {

/// Map a spec policy name onto the render policy + priority assignment.
sched::SchedulingPolicy apply_policy(const std::string& policy,
                                     sched::TaskSet& ts) {
  if (policy == "rm") {
    sched::assign_rate_monotonic(ts);
    return sched::SchedulingPolicy::FixedPriority;
  }
  if (policy == "dm") {
    sched::assign_deadline_monotonic(ts);
    return sched::SchedulingPolicy::FixedPriority;
  }
  if (policy == "llf") return sched::SchedulingPolicy::Llf;
  return sched::SchedulingPolicy::Edf;  // "edf"
}

std::string cell_label(const Cell& c) {
  std::ostringstream os;
  os << "policy=" << c.policy << " utilization=" << c.utilization
     << " task_count=" << c.task_count
     << " deadline_fraction=" << c.deadline_fraction
     << " quantum_ms=" << c.quantum_ms << " engine=" << c.engine
     << " processors=" << c.processors;
  return os.str();
}

server::Request build_request(const ExperimentSpec& spec, const Cell& cell,
                              std::size_t cell_index, std::uint64_t seed,
                              std::string model) {
  server::Request req;
  req.op = server::Op::Analyze;
  req.id = "c" + std::to_string(cell_index) + "-s" + std::to_string(seed);
  req.model = std::move(model);
  req.root = "Root.impl";
  req.options.quantum_ns = cell.quantum_ms * 1'000'000;
  req.options.max_states = spec.max_states;
  req.options.deadline_ms = 0;  // only deterministic budgets (spec.hpp)
  req.options.memory_budget_mb = 0;
  req.options.workers = 1;
  req.options.run_lint = spec.run_lint;
  req.options.late_completion = false;
  req.options.no_reduction = spec.no_reduction;
  req.options.engine = core::engine_from_string(cell.engine)
                           .value_or(core::Engine::Enumerative);
  // A fleet sweep must re-run nothing by accident but may reuse its own
  // daemon's cache freely: conclusive cached verdicts are budget-invariant,
  // so cache hits cannot change verdict data, only timing.
  req.no_cache = false;
  req.no_checkpoint = true;  // thousands of tiny models; skip the store
  return req;
}

/// Fill the verdict fields of `out` from an answered response. The
/// canonical result object is the source of truth: outcome, the static
/// decided_by ids and the engine are read back from it rather than being
/// re-derived, so the report can never disagree with the per-model JSON.
void record_response(const server::Response& resp, RunOutcome& out) {
  out.latency_ms = resp.served_ms;
  out.cached = resp.cached;
  if (!resp.ok) {
    out.outcome = "error";
    out.decided_by_class = "error";
    out.error = resp.error;
    return;
  }
  out.result_json = resp.result_json;
  const auto doc = util::parse_json(resp.result_json);
  const util::JsonValue* outcome = doc ? doc->get("outcome") : nullptr;
  out.outcome = outcome ? outcome->as_string() : "error";
  const util::JsonValue* decided = doc ? doc->get("decided_by") : nullptr;
  if (decided && !decided->as_string().empty()) {
    out.decided_by_class = "static";
    out.decided_by_ids = decided->as_string();
  } else {
    const util::JsonValue* engine = doc ? doc->get("engine") : nullptr;
    out.decided_by_class = engine ? engine->as_string() : "error";
  }
}

}  // namespace

std::optional<std::string> render_model(const ExperimentSpec& spec,
                                        const Cell& cell,
                                        std::size_t cell_index,
                                        std::uint64_t seed,
                                        std::string& error,
                                        double* realized_utilization,
                                        double* drift) {
  sched::WorkloadSpec ws;
  ws.task_count = cell.task_count;
  ws.total_utilization = cell.utilization;
  ws.deadline_fraction = cell.deadline_fraction;
  ws.periods = spec.periods;
  auto ts = sched::try_generate_workload(ws, seed, error);
  if (!ts) return std::nullopt;

  // Partitioned topology: round-robin tasks over the cell's processors.
  // Each distinct Task::processor value becomes one `cpuN` subcomponent.
  for (std::size_t i = 0; i < ts->tasks.size(); ++i)
    ts->tasks[i].processor = static_cast<int>(i % cell.processors);

  const sched::SchedulingPolicy policy = apply_policy(cell.policy, *ts);
  if (realized_utilization) *realized_utilization = ts->utilization();
  if (drift) *drift = ts->utilization_drift();

  core::TasksetRenderOptions ropts;
  ropts.quantum_ns = cell.quantum_ms * 1'000'000;
  // Provenance header: which spec point produced this model. Deterministic
  // (no timestamps), so both backends submit byte-identical model text.
  std::ostringstream hdr;
  hdr << "generated by aadlsched-exp\n"
      << "experiment: " << spec.name << "\n"
      << "cell " << cell_index << ": " << cell_label(cell) << "\n"
      << "seed: " << seed;
  ropts.header_comment = hdr.str();
  return core::taskset_to_aadl(*ts, policy, ropts);
}

ExperimentResult run_experiment(
    const ExperimentSpec& spec, const std::optional<DaemonEndpoint>& daemon,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  const std::vector<Cell> cells = expand_grid(spec);
  const std::size_t total = cells.size() * spec.seed_count;

  ExperimentResult result;
  result.backend = daemon ? "daemon" : "in-process";
  result.total_runs = total;
  result.cells.reserve(cells.size());
  for (const Cell& c : cells) {
    CellResult cr;
    cr.cell = c;
    cr.runs.resize(spec.seed_count);
    result.cells.push_back(std::move(cr));
  }

  // In-process backend: the daemon minus the socket. The Service owns the
  // analysis worker pool, so the sweep threads only generate models and
  // block on handle(); sizing both pools identically keeps every analysis
  // worker fed without oversubscription.
  std::unique_ptr<server::Service> service;
  if (!daemon) {
    server::ServiceConfig cfg;
    cfg.workers = spec.workers;
    cfg.maintenance_interval_ms = 0;  // no disk tier, nothing to sweep
    service = std::make_unique<server::Service>(cfg);
  }

  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> transport_failures{0};
  const auto t0 = std::chrono::steady_clock::now();

  versa::parallel_sweep(
      total,
      [&](std::size_t i) {
        const std::size_t ci = i / spec.seed_count;
        const std::uint64_t seed =
            spec.seed_begin + (i % spec.seed_count);
        RunOutcome& out = result.cells[ci].runs[i % spec.seed_count];
        out.seed = seed;

        std::string error;
        const auto model =
            render_model(spec, cells[ci], ci, seed, error,
                         &out.realized_utilization, &out.drift);
        if (!model) {
          out.generated = false;
          out.outcome = "error";
          out.decided_by_class = "generator";
          out.error = error;
        } else {
          out.generated = true;
          server::Request req =
              build_request(spec, cells[ci], ci, seed, *model);
          if (service) {
            record_response(service->handle(std::move(req)), out);
          } else {
            std::string terror;
            const auto resp = server::request_with_retry(
                daemon->host, daemon->port, req, daemon->retry, terror);
            if (!resp) {
              out.transport_failed = true;
              out.outcome = "error";
              out.decided_by_class = "transport";
              out.error = terror;
              transport_failures.fetch_add(1, std::memory_order_relaxed);
            } else {
              record_response(*resp, out);
            }
          }
        }
        const std::size_t n = done.fetch_add(1, std::memory_order_relaxed);
        if (progress) progress(n + 1, total);
      },
      spec.workers);

  result.total_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  result.transport_failures = transport_failures.load();
  if (service) service->shutdown();
  return result;
}

}  // namespace aadlsched::exp
