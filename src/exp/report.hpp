// experiment_report.json rendering (EXPERIMENTS.md E15).
//
// The report separates what is deterministic from what is not:
//   * each cell's "verdicts" object (per-seed outcomes, decided-by
//     breakdown, acceptance fraction, realized utilization) and the
//     top-level realized-utilization "curve" depend only on the spec —
//     exp_smoke.sh asserts they are byte-identical between the in-process
//     and daemon backends;
//   * each cell's "timing" object (latency distribution, cache hits) and
//     the top-level "timing"/"transport" blocks are environmental and
//     excluded from that comparison.
#pragma once

#include <string>

#include "exp/runner.hpp"
#include "exp/spec.hpp"

namespace aadlsched::exp {

inline constexpr int kReportSchemaVersion = 1;

/// Render the canonical report document (trailing newline included).
std::string render_report(const ExperimentSpec& spec,
                          const ExperimentResult& result);

}  // namespace aadlsched::exp
