// Experiment execution: expand the spec, mass-generate AADL models, fan
// the analyses out, and collect per-run verdicts.
//
// Two backends, one contract:
//   * in-process — a server::Service (the daemon minus the socket) owned by
//     the runner, with `spec.workers` analysis workers;
//   * daemon — requests submitted over TCP to a running aadlschedd through
//     the shared retry/backoff client (server/client.hpp), `spec.workers`
//     concurrent connections via versa::parallel_sweep.
// Both backends submit byte-identical Request objects built from the same
// generated model text, so the same spec reaches byte-identical verdict
// data either way (exp_smoke.sh pins this). Timing (latency, cache hits)
// is collected separately and is NOT part of the determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "server/client.hpp"

namespace aadlsched::exp {

/// One (cell, seed) analysis.
struct RunOutcome {
  std::uint64_t seed = 0;
  /// Workload generation + rendering succeeded (false records the
  /// generator's diagnostic in `error` and never contacts a backend).
  bool generated = false;
  // --- verdict data (deterministic, compared across backends) ------------
  std::string outcome = "error";  // schedulable | not_schedulable | ...
  /// What decided the verdict: "static" (lint screen), the engine name
  /// ("enumerative"/"symbolic"), or "transport" when the daemon was
  /// unreachable.
  std::string decided_by_class = "transport";
  std::string decided_by_ids;  // lint check ids when static, else ""
  double realized_utilization = 0;  // sum C/T of the generated set
  double drift = 0;                 // realized - requested
  // --- timing / transport (nondeterministic) ------------------------------
  double latency_ms = 0;  // service-side served_ms
  bool cached = false;
  bool transport_failed = false;
  std::string error;        // generator/transport/daemon diagnostic
  std::string result_json;  // canonical result object ("" when unreachable)
};

struct CellResult {
  Cell cell;
  std::vector<RunOutcome> runs;  // ordered by seed
};

struct ExperimentResult {
  std::string backend;  // "in-process" | "daemon"
  std::vector<CellResult> cells;
  std::size_t total_runs = 0;
  std::size_t transport_failures = 0;
  double total_ms = 0;  // wall clock across the whole sweep
};

struct DaemonEndpoint {
  std::string host;
  std::uint16_t port = 0;
  server::RetryPolicy retry;
};

/// Deterministic model text for one (cell, seed): generated task set with
/// policy-appropriate priorities, rendered with a provenance header naming
/// the experiment, cell index and seed. Returns nullopt with the
/// generator's diagnostic on an ungenerable spec. Exposed for tests and
/// for --models-dir dumping.
std::optional<std::string> render_model(const ExperimentSpec& spec,
                                        const Cell& cell,
                                        std::size_t cell_index,
                                        std::uint64_t seed,
                                        std::string& error,
                                        double* realized_utilization = nullptr,
                                        double* drift = nullptr);

/// Run the whole experiment. `daemon` nullopt = in-process backend.
/// `progress`, when set, is invoked after every completed run with
/// (done, total) — from worker threads, so it must be thread-safe.
ExperimentResult run_experiment(
    const ExperimentSpec& spec, const std::optional<DaemonEndpoint>& daemon,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

}  // namespace aadlsched::exp
