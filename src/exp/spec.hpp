// Declarative experiment specs for aadlsched-exp, the fleet-scale
// experiment harness (EXPERIMENTS.md E15).
//
// A spec is a JSON document naming a grid of analysis configurations
// (scheduling policy × total utilization × task count × deadline fraction ×
// quantum × engine × processor topology) and a seed range. The harness
// expands the Cartesian product into cells, generates one synthetic AADL
// model per (cell, seed) through sched::generate_workload +
// core::taskset_to_aadl, analyzes every model either in-process or against
// a running aadlschedd, and aggregates acceptance fractions per cell and
// per realized-utilization bin.
//
// Spec format (all grid axes optional; defaults give a 1-point axis):
//
//   {
//     "name": "smoke",
//     "grid": {
//       "policy": ["rm", "edf"],             // rm | dm | edf | llf
//       "utilization": [0.5, 0.9],           // requested total U
//       "task_count": [3, 4],
//       "deadline_fraction": [1.0],          // D = C + f*(T-C)
//       "quantum_ms": [1],
//       "engine": ["enumerative"],           // enumerative | symbolic | auto
//       "processors": [1]                    // partitioned topology width
//     },
//     "seeds": {"begin": 1, "count": 5},
//     "periods": [4, 5, 8, 10, 16, 20],      // quanta; optional
//     "budget": {"max_states": 200000},      // deterministic budgets only
//     "lint": true,
//     "no_reduction": false,
//     "bin_width": 0.1,                      // realized-U curve bins
//     "workers": 1                           // fan-out concurrency
//   }
//
// Wall-clock budgets (deadline_ms) are deliberately NOT part of the spec:
// the harness's contract is that in-process and daemon runs of the same
// spec reach byte-identical verdicts, and only state-count budgets make
// outcomes machine-independent.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sched/task.hpp"

namespace aadlsched::exp {

struct ExperimentSpec {
  std::string name = "experiment";
  // Grid axes (validated non-empty after defaults apply).
  std::vector<std::string> policies = {"rm"};
  std::vector<double> utilizations = {0.7};
  std::vector<std::size_t> task_counts = {3};
  std::vector<double> deadline_fractions = {1.0};
  std::vector<std::int64_t> quantum_ms = {1};
  std::vector<std::string> engines = {"enumerative"};
  std::vector<int> processors = {1};
  // Seed range: seeds seed_begin .. seed_begin + seed_count - 1 per cell.
  std::uint64_t seed_begin = 1;
  std::uint64_t seed_count = 10;
  // Candidate periods in quanta; empty input is a spec error (the workload
  // generator rejects it — see sched::validate_workload_spec).
  std::vector<sched::Time> periods = {4, 5, 8, 10, 16, 20};
  // Deterministic exploration budget per model.
  std::uint64_t max_states = 200'000;
  bool run_lint = true;
  bool no_reduction = false;
  // Realized-utilization histogram bin width for the acceptance curve.
  double bin_width = 0.1;
  // Fan-out workers (in-process Service pool size / concurrent daemon
  // connections). 0 = hardware concurrency.
  std::size_t workers = 1;
};

/// One point of the expanded grid.
struct Cell {
  std::string policy;
  double utilization = 0;
  std::size_t task_count = 0;
  double deadline_fraction = 1.0;
  std::int64_t quantum_ms = 1;
  std::string engine;
  int processors = 1;
};

/// Parse and validate a spec document. Returns nullopt with a diagnostic in
/// `error` on malformed JSON, unknown keys' values of the wrong shape, an
/// invalid axis value (unknown policy/engine, utilization <= 0, zero task
/// count, deadline fraction outside [0, 1], ...) or a period set the
/// workload generator would reject.
std::optional<ExperimentSpec> parse_experiment_spec(const std::string& text,
                                                    std::string& error);

/// Cartesian product of the grid axes, in spec order (policy outermost,
/// processors innermost). Deterministic: the cell index is part of every
/// generated model's provenance.
std::vector<Cell> expand_grid(const ExperimentSpec& spec);

}  // namespace aadlsched::exp
