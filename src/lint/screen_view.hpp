// Quantized per-processor task view shared by the screening and exact
// lint tiers. Replicates the translator's rounding (execution times up,
// periods/deadlines/offsets down) and its per-processor priority
// assignment, so static analyses see exactly the parameters exploration
// would; deliberately does not use core::extract_taskset (core depends on
// lint, not the other way around).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "aadl/properties.hpp"
#include "lint/lint.hpp"

namespace aadlsched::lint {

struct ScreenTask {
  const aadl::ComponentInstance* inst = nullptr;
  std::string path;
  aadl::DispatchProtocol dispatch = aadl::DispatchProtocol::Periodic;
  std::int64_t cmin_q = 0, cmax_q = 0, period_q = 0, deadline_q = 0;
  std::int64_t offset_q = 0;  // Dispatch_Offset (clamped like the translator)
  /// Effective scheduling priority mirroring translate::assign_priorities
  /// (RM/DM rank, HPF declared+2, EDF/LLF 0, background floor); larger is
  /// more important. Meaningless when ScreenCpu::priorities_ok is false.
  int priority = 0;
};

struct ScreenCpu {
  const aadl::ComponentInstance* cpu = nullptr;
  std::optional<aadl::SchedulingProtocol> protocol;
  std::vector<ScreenTask> tasks;  // model order (= translator order)
  bool complete = true;  // every bound thread yielded full, valid timing
  /// False when HPF is selected but some non-background thread lacks the
  /// required Priority property (the translator errors there).
  bool priorities_ok = true;
};

std::vector<ScreenCpu> extract_screen_cpus(const Subject& subject);

/// Exact utilization comparison over the quantized view: returns the sign
/// of (sum cmax/period) - 1 as -1/0/+1, or nullopt when the exact
/// accumulation would overflow 128-bit.
std::optional<int> utilization_vs_one(const std::vector<ScreenTask>& tasks,
                                      bool periodic_only);

double utilization_double(const std::vector<ScreenTask>& tasks,
                          bool periodic_only);

std::string utilization_string(const std::vector<ScreenTask>& tasks,
                               bool periodic_only);

/// Is the whole model free of features the classical per-processor task
/// abstraction cannot express (event chains, bus contention)? Data access
/// connections do not count against purity: exploration ignores them, and
/// the blocking-aware passes over-approximate them.
bool model_is_pure(const aadl::InstanceModel& m);

/// All tasks periodic with implicit deadlines (deadline == period) after
/// quantization — the fragment of the utilization-bound screens.
bool all_periodic_implicit(const ScreenCpu& sc);

/// All tasks periodic with constrained deadlines (1 <= deadline <= period)
/// after quantization — the fragment of the exact RTA/QPA screens.
bool all_periodic_constrained(const ScreenCpu& sc);

/// Do all tasks dispatch synchronously (no Dispatch_Offset)? The critical
/// instant behind the NotSchedulable witnesses needs a synchronous release.
bool all_zero_offsets(const ScreenCpu& sc);

}  // namespace aadlsched::lint
