#include "lint/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "acsr/context.hpp"
#include "lint/passes.hpp"
#include "util/string_utils.hpp"

namespace aadlsched::lint {

std::string_view to_string(Tier t) {
  switch (t) {
    case Tier::ModelHygiene: return "model-hygiene";
    case Tier::Screening: return "screening";
    case Tier::AcsrWellFormedness: return "acsr-well-formedness";
  }
  return "?";
}

std::string_view to_string(StaticVerdict v) {
  switch (v) {
    case StaticVerdict::None: return "none";
    case StaticVerdict::Schedulable: return "schedulable";
    case StaticVerdict::NotSchedulable: return "not_schedulable";
  }
  return "?";
}

std::string Finding::render() const {
  std::ostringstream os;
  os << util::to_string(severity) << ": [" << check_id << ' ' << check_name
     << "] ";
  if (!component.empty()) os << component << ": ";
  os << message;
  return os.str();
}

std::size_t Report::count(util::Severity sev) const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.severity == sev) ++n;
  return n;
}

bool Report::fails(util::Severity fail_on) const {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return static_cast<int>(f.severity) >= static_cast<int>(fail_on);
  });
}

std::string Report::render_text() const {
  std::ostringstream os;
  for (const Finding& f : findings) os << f.render() << '\n';
  os << "lint: " << errors() << " error(s), " << warnings()
     << " warning(s), " << count(util::Severity::Note) << " note(s)";
  if (verdict != StaticVerdict::None) {
    os << "; static verdict: " << to_string(verdict) << " (decided by "
       << decided_by << ')';
    if (!verdict_detail.empty()) os << " — " << verdict_detail;
  }
  os << '\n';
  return os.str();
}

std::string Report::render_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema_version\": " << kLintSchemaVersion << ",\n";
  os << "  \"lint_pass_version\": " << kLintPassVersion << ",\n";
  os << "  \"verdict\": \"" << to_string(verdict) << "\",\n";
  os << "  \"translated\": " << (translated ? "true" : "false") << ",\n";
  os << "  \"decided_by\": \"" << util::json_escape(decided_by) << "\",\n";
  os << "  \"detail\": \"" << util::json_escape(verdict_detail) << "\",\n";
  os << "  \"counts\": {\"error\": " << errors() << ", \"warning\": "
     << warnings() << ", \"note\": " << count(util::Severity::Note)
     << "},\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"check\": \"" << f.check_id << "\", \"name\": \""
       << f.check_name << "\", \"severity\": \""
       << util::to_string(f.severity) << "\", \"line\": " << f.loc.line
       << ", \"column\": " << f.loc.column << ", \"component\": \""
       << util::json_escape(f.component) << "\", \"message\": \""
       << util::json_escape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"processor_verdicts\": [";
  for (std::size_t i = 0; i < processor_verdicts.size(); ++i) {
    const ProcessorVerdict& pv = processor_verdicts[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"processor\": \"" << util::json_escape(pv.processor)
       << "\", \"check\": \"" << pv.check_id << "\", \"schedulable\": "
       << (pv.schedulable ? "true" : "false") << ", \"detail\": \""
       << util::json_escape(pv.detail) << "\"}";
  }
  os << (processor_verdicts.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"certificates\": [";
  for (std::size_t i = 0; i < certificates.size(); ++i) {
    const StaticCertificate& c = certificates[i];
    os << (i ? ",\n    " : "\n    ");
    os << "{\"check\": \"" << c.check_id << "\", \"kind\": \"" << c.kind
       << "\", \"processor\": \"" << util::json_escape(c.processor)
       << "\", \"schedulable\": " << (c.schedulable ? "true" : "false")
       << ", \"window\": " << c.window_q << ", \"demand\": " << c.demand_q
       << ", \"tasks\": [";
    for (std::size_t j = 0; j < c.tasks.size(); ++j) {
      const CertTask& t = c.tasks[j];
      os << (j ? ",\n      " : "\n      ");
      os << "{\"path\": \"" << util::json_escape(t.path)
         << "\", \"wcet\": " << t.wcet_q << ", \"period\": " << t.period_q
         << ", \"deadline\": " << t.deadline_q
         << ", \"priority\": " << t.priority
         << ", \"blocking\": " << t.blocking_q
         << ", \"response\": " << t.response_q << '}';
    }
    os << (c.tasks.empty() ? "]}" : "\n    ]}");
  }
  os << (certificates.empty() ? "]" : "\n  ]") << ",\n";
  os << "  \"skipped\": [";
  for (std::size_t i = 0; i < skipped.size(); ++i)
    os << (i ? ", " : "") << '"' << skipped[i] << '"';
  os << "]\n}\n";
  return os.str();
}

void Sink::report(util::Severity sev, util::SourceLoc loc,
                  std::string component, std::string message) {
  Finding f;
  f.check_id = std::string(current_ ? current_->id : "AL???");
  f.check_name = std::string(current_ ? current_->name : "");
  f.severity = sev;
  f.loc = loc;
  f.component = std::move(component);
  f.message = std::move(message);
  if (mirror_) {
    std::string m = "[" + f.check_id + " " + f.check_name + "] ";
    if (!f.component.empty()) m += f.component + ": ";
    m += f.message;
    mirror_->report(sev, loc, std::move(m));
  }
  report_.findings.push_back(std::move(f));
}

void Sink::conclusive(StaticVerdict v, std::string detail) {
  if (v == StaticVerdict::None) return;
  // NotSchedulable (a guaranteed counterexample) dominates a sufficient
  // Schedulable bound.
  if (report_.verdict == StaticVerdict::NotSchedulable) return;
  if (report_.verdict == StaticVerdict::Schedulable &&
      v != StaticVerdict::NotSchedulable)
    return;
  report_.verdict = v;
  report_.decided_by = std::string(current_ ? current_->id : "?");
  report_.verdict_detail = std::move(detail);
}

void Sink::certificate(StaticCertificate cert) {
  cert.check_id = std::string(current_ ? current_->id : "?");
  report_.certificates.push_back(std::move(cert));
}

void Sink::processor_verdict(std::string processor, bool schedulable,
                             std::string detail) {
  ProcessorVerdict pv;
  pv.processor = std::move(processor);
  pv.check_id = std::string(current_ ? current_->id : "?");
  pv.schedulable = schedulable;
  pv.detail = std::move(detail);
  report_.processor_verdicts.push_back(std::move(pv));
}

void Registry::add(std::unique_ptr<Pass> pass) {
  passes_.push_back(std::move(pass));
}

const Pass* Registry::find(std::string_view id_or_name) const {
  for (const auto& p : passes_)
    if (p->info().id == id_or_name || p->info().name == id_or_name)
      return p.get();
  return nullptr;
}

const Registry& Registry::builtin() {
  // Explicit registration (not self-registering statics: those would be
  // dropped when linking the static library).
  static const Registry* reg = [] {
    auto* r = new Registry;
    register_model_passes(*r);
    register_screening_passes(*r);
    register_exact_passes(*r);
    register_acsr_passes(*r);
    return r;
  }();
  return *reg;
}

namespace {

bool is_disabled(const Options& opts, const CheckInfo& info) {
  for (const std::string& d : opts.disabled)
    if (d == info.id || d == info.name) return true;
  return false;
}

/// Combine per-processor Schedulable claims into a whole-model verdict: the
/// classical abstraction must have been exact (translation succeeded, no
/// latency observers) and every processor that carries threads must be
/// vouched for by a screening pass.
void finalize_verdict(const Subject& subject, Report& report) {
  if (report.verdict != StaticVerdict::None) return;
  if (!subject.instance || !subject.translation) return;
  if (!subject.topts.latency_specs.empty()) return;
  if (report.errors() > 0) return;

  std::set<const aadl::ComponentInstance*> thread_bearing;
  for (const auto& [thread, cpu] : subject.instance->bindings)
    thread_bearing.insert(cpu);
  if (thread_bearing.empty()) return;

  std::set<std::string> deciders;
  for (const aadl::ComponentInstance* cpu : thread_bearing) {
    bool vouched = false;
    for (const ProcessorVerdict& pv : report.processor_verdicts) {
      if (pv.schedulable && pv.processor == cpu->path) {
        vouched = true;
        deciders.insert(pv.check_id);
        break;
      }
    }
    if (!vouched) return;
  }
  report.verdict = StaticVerdict::Schedulable;
  report.decided_by = util::join(
      std::vector<std::string>(deciders.begin(), deciders.end()), "+");
  report.verdict_detail =
      "every thread-bearing processor passes a sufficient bound on an "
      "exactly-abstracted model";
}

}  // namespace

Report run_subject(const Subject& subject, const Options& opts) {
  Report report;
  report.translated = subject.translation != nullptr;
  Sink sink(report, opts.diags);
  const Registry& reg = opts.registry ? *opts.registry : Registry::builtin();
  for (const auto& pass : reg.passes()) {
    const CheckInfo& info = pass->info();
    if (is_disabled(opts, info)) continue;
    if ((pass->needs_instance() && !subject.instance) ||
        (pass->needs_acsr() && !subject.acsr)) {
      report.skipped.emplace_back(info.id);
      continue;
    }
    sink.set_current(&info);
    pass->run(subject, sink);
  }
  sink.set_current(nullptr);
  finalize_verdict(subject, report);
  return report;
}

Report run(const aadl::InstanceModel& instance, const Options& opts) {
  Subject subject;
  subject.instance = &instance;
  subject.topts = opts.translation;

  // Translate into a scratch context so the ACSR-tier passes can inspect
  // the generated process network. Translation diagnostics are discarded:
  // the hygiene passes report the same preconditions with check ids.
  acsr::Context ctx;
  util::DiagnosticEngine scratch("<lint>");
  auto tr = translate::translate(ctx, instance, scratch, opts.translation);
  if (tr) {
    subject.acsr = &ctx;
    subject.translation = &*tr;
  }
  return run_subject(subject, opts);
}

Report run_acsr(const acsr::Context& ctx, const Options& opts) {
  Subject subject;
  subject.acsr = &ctx;
  subject.topts = opts.translation;
  return run_subject(subject, opts);
}

}  // namespace aadlsched::lint
