// Exact static verdict tier (AL013..AL016): response-time analysis, EDF
// processor-demand analysis, and blocking-aware variants over shared
// resources. Soundness contract with exploration (DESIGN.md §14):
//
//   * Schedulable vouches follow the AL008/AL009 discipline (pure model,
//     periodic threads, per-processor claim promoted by the driver) but
//     use the exact tests, so they cover strictly more models. AL013
//     charges equal-priority tasks as mutual interference — the
//     pessimistic reading required because exploration enumerates every
//     tie interleaving.
//   * NotSchedulable claims additionally require synchronous release (no
//     Dispatch_Offset) and, for fixed priorities, distinct effective
//     priorities; then the synchronous busy-period witness is a schedule
//     prefix exploration itself reaches (the all-WCET branch is always a
//     choice), so a computed overload is a guaranteed deadlock.
//   * AL015 only ever vouches: exploration walks the lock-free model, and
//     response times with blocking terms dominate response times without,
//     so "schedulable even with blocking" implies exploration agreement —
//     while documenting a strictly stronger claim than exploration can
//     check. It never refutes (a blocking-induced miss is invisible to
//     the explorer, and claiming it would break the agreement contract).
//   * AL016 is advisory: it flags shared-resource hazards (no protocol,
//     unbounded inversion, missing section bounds, cross-processor
//     sharing) that the verdict machinery deliberately ignores.
//
// Every conclusive or per-processor claim carries a StaticCertificate
// with the exact quantized parameters, so an independent checker can
// replay the fixed point / demand bound without trusting this code.
#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "aadl/resources.hpp"
#include "lint/passes.hpp"
#include "lint/screen_view.hpp"
#include "sched/analysis.hpp"
#include "sched/blocking.hpp"
#include "util/numeric.hpp"

namespace aadlsched::lint {

namespace {

using aadl::DispatchProtocol;
using aadl::SchedulingProtocol;

/// QPA horizons above this are not worth the static check (the bound is
/// hyperperiod-sized on pathological period sets); the pass abstains.
constexpr sched::Time kQpaHorizonCap = sched::Time{1} << 22;

bool fixed_priority_protocol(SchedulingProtocol p) {
  return p == SchedulingProtocol::RateMonotonic ||
         p == SchedulingProtocol::DeadlineMonotonic ||
         p == SchedulingProtocol::HighestPriorityFirst;
}

sched::TaskSet to_taskset(const ScreenCpu& sc) {
  sched::TaskSet ts;
  for (const ScreenTask& t : sc.tasks) {
    sched::Task task;
    task.name = t.path;
    task.wcet = t.cmax_q;
    task.bcet = t.cmin_q;
    task.period = t.period_q;
    task.deadline = t.deadline_q;
    task.priority = t.priority;
    ts.tasks.push_back(std::move(task));
  }
  return ts;
}

bool distinct_priorities(const ScreenCpu& sc) {
  std::set<int> seen;
  for (const ScreenTask& t : sc.tasks)
    if (!seen.insert(t.priority).second) return false;
  return true;
}

std::vector<CertTask> cert_rows(const ScreenCpu& sc,
                                const std::vector<sched::Time>* blocking,
                                const std::vector<sched::Time>* response) {
  std::vector<CertTask> rows;
  for (std::size_t i = 0; i < sc.tasks.size(); ++i) {
    const ScreenTask& t = sc.tasks[i];
    CertTask row;
    row.path = t.path;
    row.wcet_q = t.cmax_q;
    row.period_q = t.period_q;
    row.deadline_q = t.deadline_q;
    row.priority = t.priority;
    if (blocking && i < blocking->size()) row.blocking_q = (*blocking)[i];
    if (response && i < response->size()) row.response_q = (*response)[i];
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Level-i demand at window t under the synchronous release: the task's own
/// WCET plus every higher-priority release in [0, t). Used for the
/// NotSchedulable witness (distinct priorities required by the caller).
sched::Time level_demand(const sched::TaskSet& ts, std::size_t i,
                         sched::Time t) {
  sched::Time demand = ts.tasks[i].wcet;
  for (std::size_t j = 0; j < ts.tasks.size(); ++j) {
    if (j == i || ts.tasks[j].priority <= ts.tasks[i].priority) continue;
    demand += util::ceil_div(t, ts.tasks[j].period) * ts.tasks[j].wcet;
  }
  return demand;
}

// --- AL013 ----------------------------------------------------------------

class ExactRtaPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL013", "exact-rta",
        "exact response-time analysis for fixed-priority processors "
        "(conclusive both ways on pure constrained-deadline models)",
        Tier::Screening, "exact (within fragment)",
        "Joseph & Pandya response-time analysis is necessary and "
        "sufficient for preemptive fixed-priority scheduling of "
        "independent periodic tasks with constrained deadlines. Vouching "
        "charges equal-priority tasks as mutual interference (exploration "
        "enumerates every tie interleaving); refuting requires distinct "
        "priorities and synchronous release, where the failed busy period "
        "is a reachable schedule prefix of the explorer's all-WCET branch."};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    if (!model_is_pure(*subject.instance)) return;
    for (const ScreenCpu& sc : extract_screen_cpus(subject)) {
      if (!sc.complete || !sc.protocol || !sc.priorities_ok) continue;
      if (!fixed_priority_protocol(*sc.protocol)) continue;
      if (!all_periodic_constrained(sc)) continue;

      const sched::TaskSet ts = to_taskset(sc);
      const auto pessimistic =
          sched::response_time_analysis(ts, nullptr, /*ties_interfere=*/true);
      if (pessimistic.verdict == sched::Verdict::Schedulable) {
        sched::Time worst = 0;
        for (const sched::Time r : pessimistic.response)
          worst = std::max(worst, r);
        std::ostringstream os;
        os << "exact RTA holds: every response time meets its deadline "
              "(worst " << worst << " quanta, ties counted as interference)";
        sink.note(sc.cpu->path, os.str());
        sink.processor_verdict(sc.cpu->path, true, os.str());
        StaticCertificate cert;
        cert.kind = "fp-response-bound";
        cert.processor = sc.cpu->path;
        cert.schedulable = true;
        cert.tasks = cert_rows(sc, nullptr, &pessimistic.response);
        sink.certificate(std::move(cert));
        continue;
      }

      // Refutation needs the deterministic fragment: distinct priorities
      // and synchronous release, so the synchronous busy period is the
      // real worst case and the index tie-break never matters.
      if (!distinct_priorities(sc) || !all_zero_offsets(sc)) continue;
      const auto exact = sched::response_time_analysis(ts);
      if (exact.verdict != sched::Verdict::Unschedulable) continue;
      for (std::size_t i = 0; i < ts.tasks.size(); ++i) {
        const bool missed = exact.response[i] < 0 ||
                            exact.response[i] > ts.tasks[i].deadline;
        if (!missed) continue;
        const sched::Time window = ts.tasks[i].deadline;
        const sched::Time demand = level_demand(ts, i, window);
        if (demand <= window) continue;  // defensive; cannot happen
        sink.error(sc.cpu->path,
                   "response-time analysis proves a deadline miss: '" +
                       ts.tasks[i].name + "' needs " +
                       std::to_string(demand) + " quanta of level-" +
                       std::to_string(ts.tasks[i].priority) +
                       " demand inside its deadline window of " +
                       std::to_string(window));
        sink.conclusive(StaticVerdict::NotSchedulable,
                        "thread '" + ts.tasks[i].name +
                            "' provably misses its deadline under "
                            "fixed-priority scheduling (demand " +
                            std::to_string(demand) + " > window " +
                            std::to_string(window) + " quanta)");
        StaticCertificate cert;
        cert.kind = "fp-overload-witness";
        cert.processor = sc.cpu->path;
        cert.schedulable = false;
        cert.tasks = cert_rows(sc, nullptr, nullptr);
        // Witness row first so checkers know which task misses.
        std::stable_partition(
            cert.tasks.begin(), cert.tasks.end(),
            [&](const CertTask& row) { return row.path == ts.tasks[i].name; });
        cert.window_q = window;
        cert.demand_q = demand;
        sink.certificate(std::move(cert));
        break;  // one witness per processor is enough
      }
    }
  }
};

// --- AL014 ----------------------------------------------------------------

class EdfQpaPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL014", "edf-qpa",
        "EDF processor-demand analysis (QPA) — exact for constrained "
        "deadlines, covering deadline < period where AL009 abstains",
        Tier::Screening, "exact (within fragment)",
        "The processor demand criterion (dbf(t) <= t up to the standard "
        "bound) is necessary and sufficient for EDF feasibility of "
        "periodic constrained-deadline tasks on one processor, and EDF "
        "and LLF are both optimal there, so feasibility transfers to the "
        "explorer's policy. A demand overflow at a synchronous release is "
        "mandatory work that no policy can serve — a guaranteed miss."};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    if (!model_is_pure(*subject.instance)) return;
    for (const ScreenCpu& sc : extract_screen_cpus(subject)) {
      if (!sc.complete || !sc.protocol) continue;
      if (*sc.protocol != SchedulingProtocol::Edf &&
          *sc.protocol != SchedulingProtocol::Llf)
        continue;
      if (!all_periodic_constrained(sc)) continue;

      const sched::TaskSet ts = to_taskset(sc);
      if (ts.utilization() > 1.0) continue;  // AL007 refutes overload exactly
      const sched::Time bound = sched::edf_check_bound(ts);
      if (bound > kQpaHorizonCap) {
        sink.note(sc.cpu->path,
                  "QPA horizon of " + std::to_string(bound) +
                      " quanta exceeds the static-analysis cap; leaving "
                      "this processor to exploration");
        continue;
      }
      const auto res = sched::edf_qpa(ts);
      if (res.verdict == sched::Verdict::Schedulable) {
        std::ostringstream os;
        os << "EDF demand analysis holds: dbf(t) <= t for every deadline "
              "up to " << bound << " quanta";
        sink.note(sc.cpu->path, os.str());
        sink.processor_verdict(sc.cpu->path, true, os.str());
        StaticCertificate cert;
        cert.kind = "edf-demand";
        cert.processor = sc.cpu->path;
        cert.schedulable = true;
        cert.tasks = cert_rows(sc, nullptr, nullptr);
        cert.window_q = bound;
        sink.certificate(std::move(cert));
        continue;
      }
      if (!res.overflow_point || !all_zero_offsets(sc)) continue;
      const sched::Time t = *res.overflow_point;
      const sched::Time demand = sched::demand_bound(ts, t);
      if (demand <= t) continue;  // defensive; cannot happen
      sink.error(sc.cpu->path,
                 "processor demand analysis proves a deadline miss: "
                 "demand " + std::to_string(demand) +
                     " quanta by absolute deadline " + std::to_string(t));
      sink.conclusive(StaticVerdict::NotSchedulable,
                      "processor '" + sc.cpu->path +
                          "' provably overflows under any policy: dbf(" +
                          std::to_string(t) + ") = " +
                          std::to_string(demand) + " > " + std::to_string(t) +
                          " quanta");
      StaticCertificate cert;
      cert.kind = "edf-overflow-witness";
      cert.processor = sc.cpu->path;
      cert.schedulable = false;
      cert.tasks = cert_rows(sc, nullptr, nullptr);
      cert.window_q = t;
      cert.demand_q = demand;
      sink.certificate(std::move(cert));
    }
  }
};

// --- shared-resource view shared by AL015/AL016 ---------------------------

sched::LockProtocol to_lock_protocol(aadl::ConcurrencyProtocol p) {
  switch (p) {
    case aadl::ConcurrencyProtocol::PriorityInheritance:
      return sched::LockProtocol::PriorityInheritance;
    case aadl::ConcurrencyProtocol::PriorityCeiling:
      return sched::LockProtocol::PriorityCeiling;
    case aadl::ConcurrencyProtocol::None: break;
  }
  return sched::LockProtocol::None;
}

// --- AL015 ----------------------------------------------------------------

class BlockingRtaPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL015", "blocking-rta",
        "response-time analysis with PCP/PIP blocking terms from shared "
        "data components (vouch-only)",
        Tier::Screening, "sufficient",
        "Adds worst-case blocking terms B_i (priority-ceiling: one longest "
        "lower-priority section with ceiling at or above the task; "
        "priority-inheritance: one section per lower-priority task) to the "
        "RTA recurrence. Exploration walks the lock-free model, and "
        "responses with blocking dominate responses without, so a "
        "schedulable-with-blocking processor is schedulable for the "
        "explorer too — the vouch is a strictly stronger claim than the "
        "agreement contract needs. Never refutes: a blocking-induced miss "
        "is invisible to exploration."};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    if (!model_is_pure(*subject.instance)) return;
    const aadl::SharedResourceModel srm =
        aadl::extract_shared_resources(*subject.instance);
    if (srm.resources.empty()) return;
    const std::int64_t q = subject.topts.quantum_ns;

    for (const ScreenCpu& sc : extract_screen_cpus(subject)) {
      if (!sc.complete || !sc.protocol || !sc.priorities_ok) continue;
      if (!fixed_priority_protocol(*sc.protocol)) continue;
      if (!all_periodic_constrained(sc)) continue;

      std::map<const aadl::ComponentInstance*, std::size_t> index;
      for (std::size_t i = 0; i < sc.tasks.size(); ++i)
        index[sc.tasks[i].inst] = i;

      sched::ResourceModel rm;
      bool usable = true, any_access = false;
      for (const aadl::SharedResourceInfo& res : srm.resources) {
        bool on_cpu = false, off_cpu = false;
        for (const aadl::ResourceAccess& acc : res.accesses) {
          if (index.count(acc.thread))
            on_cpu = true;
          else
            off_cpu = true;
        }
        if (!on_cpu) continue;
        any_access = true;
        if (off_cpu) {
          sink.note(sc.cpu->path,
                    "resource '" + res.data->path + "' is shared across "
                    "processors; remote blocking is outside this analysis");
          usable = false;
          break;
        }
        if (res.protocol == aadl::ConcurrencyProtocol::None) {
          usable = false;  // AL016 reports the hazard
          break;
        }
        const std::size_t r = rm.resources.size();
        rm.resources.push_back(
            {res.data->path, to_lock_protocol(res.protocol)});
        for (const aadl::ResourceAccess& acc : res.accesses) {
          if (acc.section_ns < 0) {
            sink.note(sc.cpu->path,
                      "access to '" + res.data->path + "' by '" +
                          acc.thread->path +
                          "' has no Critical_Section_Time bound; "
                          "blocking-aware RTA abstains");
            usable = false;
            break;
          }
          rm.sections.push_back(
              {index.at(acc.thread), r, util::ceil_div(acc.section_ns, q)});
        }
        if (!usable) break;
      }
      if (!usable || !any_access) continue;

      const sched::TaskSet ts = to_taskset(sc);
      const auto blocking = sched::blocking_terms(ts, rm);
      if (!blocking) continue;  // unbounded (shared resource, no protocol)
      const auto rta = sched::response_time_analysis(
          ts, &*blocking, /*ties_interfere=*/true);
      if (rta.verdict != sched::Verdict::Schedulable) {
        sink.note(sc.cpu->path,
                  "blocking-aware RTA is inconclusive (responses with "
                  "blocking terms may exceed deadlines; exploration "
                  "ignores locking and decides the agreement verdict)");
        continue;
      }
      sched::Time worst_b = 0;
      for (const sched::Time b : *blocking) worst_b = std::max(worst_b, b);
      std::ostringstream os;
      os << "blocking-aware RTA holds: every response time meets its "
            "deadline even with worst-case blocking (max B_i = " << worst_b
         << " quanta)";
      sink.note(sc.cpu->path, os.str());
      sink.processor_verdict(sc.cpu->path, true, os.str());
      StaticCertificate cert;
      cert.kind = "fp-response-bound";
      cert.processor = sc.cpu->path;
      cert.schedulable = true;
      cert.tasks = cert_rows(sc, &*blocking, &rta.response);
      sink.certificate(std::move(cert));
    }
  }
};

// --- AL016 ----------------------------------------------------------------

class SharedAccessHazardPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL016", "shared-access-hazard",
        "shared data components need a concurrency-control protocol and "
        "bounded critical sections",
        Tier::Screening, "advisory",
        "Flags hazards the verdict machinery deliberately ignores "
        "(exploration walks the lock-free model): data components shared "
        "without a Concurrency_Control_Protocol (unbounded priority "
        "inversion), unparseable protocols, accesses without a "
        "Critical_Section_Time bound, sections longer than the thread's "
        "WCET, cross-processor sharing (unbounded remote blocking), and "
        "access connections that resolve to nothing."};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    const aadl::InstanceModel& m = *subject.instance;
    const aadl::SharedResourceModel srm = extract_shared_resources(m);
    const std::int64_t q = subject.topts.quantum_ns;

    for (const aadl::SharedResourceInfo& res : srm.resources) {
      std::set<const aadl::ComponentInstance*> users;
      std::set<const aadl::ComponentInstance*> cpus;
      for (const aadl::ResourceAccess& acc : res.accesses) {
        users.insert(acc.thread);
        auto it = m.bindings.find(acc.thread);
        if (it != m.bindings.end()) cpus.insert(it->second);
      }
      if (res.protocol_unknown)
        sink.warning(res.data->path,
                     "unrecognized Concurrency_Control_Protocol '" +
                         res.protocol_name + "' (treated as none)");
      if (users.size() >= 2 &&
          res.protocol == aadl::ConcurrencyProtocol::None)
        sink.warning(res.data->path,
                     "shared by " + std::to_string(users.size()) +
                         " threads without a concurrency-control protocol: "
                         "unprotected access permits unbounded priority "
                         "inversion");
      if (users.size() >= 2 && cpus.size() >= 2)
        sink.warning(res.data->path,
                     "shared across " + std::to_string(cpus.size()) +
                         " processors: remote blocking is not bounded by "
                         "any static analysis here");
      for (const aadl::ResourceAccess& acc : res.accesses) {
        if (acc.section_ns < 0) {
          if (res.protocol != aadl::ConcurrencyProtocol::None)
            sink.warning(acc.thread->path,
                         "access to '" + res.data->path +
                             "' has no Critical_Section_Time bound; "
                             "blocking-aware analysis cannot run");
          continue;
        }
        util::DiagnosticEngine scratch("<lint>");
        const auto tp = aadl::thread_properties(m, *acc.thread, scratch);
        if (tp && q > 0 &&
            util::ceil_div(acc.section_ns, q) >
                util::ceil_div(tp->compute_max_ns, q))
          sink.warning(acc.thread->path,
                       "Critical_Section_Time on '" + res.data->path +
                           "' exceeds the thread's worst-case execution "
                           "time: the lock would outlive the dispatch");
      }
    }
    for (const std::string& u : srm.unresolved)
      sink.warning("", u);
  }
};

}  // namespace

void register_exact_passes(Registry& reg) {
  reg.add(std::make_unique<ExactRtaPass>());
  reg.add(std::make_unique<EdfQpaPass>());
  reg.add(std::make_unique<BlockingRtaPass>());
  reg.add(std::make_unique<SharedAccessHazardPass>());
}

}  // namespace aadlsched::lint
