// ACSR well-formedness passes (AL010..AL012): checks over the translated
// (or hand-built) process algebra.
//
//   * AL010 finds definitions that reach themselves without an intervening
//     action or event prefix — unguarded recursion makes call unfolding
//     diverge during exploration.
//   * AL011 finds parallel compositions whose components can never satisfy
//     the Par3 disjoint-resource rule: when *every* timed action of two
//     siblings shares a resource, no joint timed step ever exists and time
//     cannot pass (a timelock). The must-use set is an intersection over
//     all reachable actions, so guards/choices only shrink it — the check
//     under-approximates and never reports a false conflict.
//   * AL012 is the static shadow of the DESIGN.md §7 livelock finding: a
//     cycle of event connections between instantly-dispatching,
//     instantly-completing threads lets dispatches chase each other without
//     time ever advancing — the explorer only detects single-state
//     instantaneous self-loops, not multi-state cycles, so we reject them
//     up front. It reads the instance model (cmin and dispatch protocols),
//     not the term graph.
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "acsr/context.hpp"
#include "aadl/properties.hpp"
#include "lint/lint.hpp"
#include "lint/passes.hpp"

namespace aadlsched::lint {

namespace {

using acsr::Context;
using acsr::DefId;
using acsr::OpenKind;
using acsr::OpenTermId;
using acsr::OpenTermNode;

// --- AL010 ----------------------------------------------------------------

/// Definitions callable from `id` without passing an Act or Evt prefix.
/// Scope handlers only run after an event or the timeout, so they count as
/// guarded; the Scope body starts immediately and does not.
void unguarded_calls(const Context& ctx, OpenTermId id,
                     std::set<DefId>& out) {
  if (id == acsr::kInvalidOpenTerm) return;
  const OpenTermNode& n = ctx.open(id);
  switch (n.kind) {
    case OpenKind::Nil:
    case OpenKind::Act:
    case OpenKind::Evt:
      return;
    case OpenKind::Choice:
    case OpenKind::Parallel:
      for (OpenTermId c : n.children) unguarded_calls(ctx, c, out);
      return;
    case OpenKind::Restrict:
    case OpenKind::Cond:
    case OpenKind::Scope:
      unguarded_calls(ctx, n.cont, out);
      return;
    case OpenKind::Call:
      out.insert(n.def);
      return;
  }
}

class UnguardedRecursionPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL010", "unguarded-recursion",
        "process definitions must not reach themselves without an action "
        "or event prefix (unfolding diverges)",
        Tier::AcsrWellFormedness};
    return kInfo;
  }
  bool needs_instance() const override { return false; }
  bool needs_acsr() const override { return true; }
  void run(const Subject& subject, Sink& sink) const override {
    const Context& ctx = *subject.acsr;
    const std::size_t n = ctx.definition_count();
    std::vector<std::set<DefId>> succ(n);
    for (std::size_t d = 0; d < n; ++d) {
      const acsr::Definition& def = ctx.definition(static_cast<DefId>(d));
      if (def.body != acsr::kInvalidOpenTerm)
        unguarded_calls(ctx, def.body, succ[d]);
    }
    // A definition is ill-formed when it can unfold back into itself: DFS
    // the unguarded-call graph from each definition.
    for (std::size_t d = 0; d < n; ++d) {
      std::set<DefId> seen;
      std::vector<DefId> stack(succ[d].begin(), succ[d].end());
      bool cyclic = false;
      while (!stack.empty() && !cyclic) {
        const DefId cur = stack.back();
        stack.pop_back();
        if (cur == static_cast<DefId>(d)) {
          cyclic = true;
          break;
        }
        if (!seen.insert(cur).second) continue;
        if (cur < n)
          for (DefId nx : succ[cur]) stack.push_back(nx);
      }
      if (cyclic)
        sink.error(ctx.definition(static_cast<DefId>(d)).name,
                   "definition recurses without an intervening action or "
                   "event prefix; unfolding this call diverges");
    }
  }
};

// --- AL011 ----------------------------------------------------------------

/// Collect the resource sets of every Act reachable from `id`, following
/// calls (each definition visited once).
void collect_action_sets(const Context& ctx, OpenTermId id,
                         std::set<DefId>& seen_defs,
                         std::vector<std::set<acsr::Resource>>& out) {
  if (id == acsr::kInvalidOpenTerm) return;
  const OpenTermNode& n = ctx.open(id);
  switch (n.kind) {
    case OpenKind::Nil:
      return;
    case OpenKind::Act: {
      std::set<acsr::Resource> rs;
      for (const acsr::OpenResourceUse& u : n.action) rs.insert(u.resource);
      out.push_back(std::move(rs));
      collect_action_sets(ctx, n.cont, seen_defs, out);
      return;
    }
    case OpenKind::Evt:
      collect_action_sets(ctx, n.cont, seen_defs, out);
      return;
    case OpenKind::Choice:
    case OpenKind::Parallel:
      for (OpenTermId c : n.children)
        collect_action_sets(ctx, c, seen_defs, out);
      return;
    case OpenKind::Restrict:
    case OpenKind::Cond:
      collect_action_sets(ctx, n.cont, seen_defs, out);
      return;
    case OpenKind::Scope:
      collect_action_sets(ctx, n.cont, seen_defs, out);
      collect_action_sets(ctx, n.exception_cont, seen_defs, out);
      collect_action_sets(ctx, n.interrupt_handler, seen_defs, out);
      collect_action_sets(ctx, n.timeout_handler, seen_defs, out);
      return;
    case OpenKind::Call: {
      if (n.def == acsr::kInvalidDef) return;
      if (!seen_defs.insert(n.def).second) return;
      const acsr::Definition& def = ctx.definition(n.def);
      collect_action_sets(ctx, def.body, seen_defs, out);
      return;
    }
  }
}

/// Resources used by *every* reachable timed action of the term (empty when
/// the term has no timed action, or some action needs no resource).
std::set<acsr::Resource> must_use(const Context& ctx, OpenTermId id) {
  std::set<DefId> seen;
  std::vector<std::set<acsr::Resource>> sets;
  collect_action_sets(ctx, id, seen, sets);
  if (sets.empty()) return {};
  std::set<acsr::Resource> acc = sets.front();
  for (std::size_t i = 1; i < sets.size() && !acc.empty(); ++i) {
    std::set<acsr::Resource> next;
    for (acsr::Resource r : acc)
      if (sets[i].count(r)) next.insert(r);
    acc = std::move(next);
  }
  return acc;
}

void find_parallels(const Context& ctx, OpenTermId id,
                    std::set<OpenTermId>& seen,
                    std::vector<OpenTermId>& out) {
  if (id == acsr::kInvalidOpenTerm || !seen.insert(id).second) return;
  const OpenTermNode& n = ctx.open(id);
  if (n.kind == OpenKind::Parallel && n.children.size() >= 2)
    out.push_back(id);
  for (OpenTermId c : n.children) find_parallels(ctx, c, seen, out);
  find_parallels(ctx, n.cont, seen, out);
  if (n.kind == OpenKind::Scope) {
    find_parallels(ctx, n.exception_cont, seen, out);
    find_parallels(ctx, n.interrupt_handler, seen, out);
    find_parallels(ctx, n.timeout_handler, seen, out);
  }
}

class Par3ConflictPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL011", "par3-conflict",
        "parallel components whose timed actions always share a resource "
        "can never take a joint timed step (Par3 timelock)",
        Tier::AcsrWellFormedness};
    return kInfo;
  }
  bool needs_instance() const override { return false; }
  bool needs_acsr() const override { return true; }
  void run(const Subject& subject, Sink& sink) const override {
    const Context& ctx = *subject.acsr;
    for (std::size_t d = 0; d < ctx.definition_count(); ++d) {
      const acsr::Definition& def = ctx.definition(static_cast<DefId>(d));
      if (def.body == acsr::kInvalidOpenTerm) continue;
      std::set<OpenTermId> seen;
      std::vector<OpenTermId> pars;
      find_parallels(ctx, def.body, seen, pars);
      for (OpenTermId pid : pars) {
        const OpenTermNode& par = ctx.open(pid);
        std::vector<std::set<acsr::Resource>> musts;
        musts.reserve(par.children.size());
        for (OpenTermId c : par.children)
          musts.push_back(must_use(ctx, c));
        for (std::size_t i = 0; i < musts.size(); ++i) {
          if (musts[i].empty()) continue;
          for (std::size_t j = i + 1; j < musts.size(); ++j) {
            for (acsr::Resource r : musts[j]) {
              if (!musts[i].count(r)) continue;
              sink.warning(
                  def.name,
                  "parallel components " + std::to_string(i) + " and " +
                      std::to_string(j) + " each use resource '" +
                      ctx.resource_name(r) +
                      "' in every timed action: they can never take a "
                      "joint timed step (Par3 requires disjoint resource "
                      "sets), so time cannot pass");
              break;  // one warning per pair is enough
            }
          }
        }
      }
    }
  }
};

// --- AL012 ----------------------------------------------------------------

class InstantaneousCyclePass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL012", "instantaneous-cycle",
        "event-connection cycles between instantly-dispatching, "
        "instantly-completing threads livelock without advancing time "
        "(DESIGN.md §7)",
        Tier::AcsrWellFormedness};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    const aadl::InstanceModel& m = *subject.instance;
    const std::int64_t q = subject.topts.quantum_ns;
    if (q <= 0) return;

    // A thread can participate in an instantaneous dispatch cycle when it
    // is event-dispatched with no enforced separation and may complete
    // with zero quanta of execution.
    std::map<const aadl::ComponentInstance*, std::size_t> index;
    std::vector<const aadl::ComponentInstance*> nodes;
    for (const aadl::ComponentInstance* t : m.threads) {
      util::DiagnosticEngine scratch("<lint>");
      const auto tp = aadl::thread_properties(m, *t, scratch);
      if (!tp) continue;
      const bool instant_complete = tp->compute_min_ns <= 0;
      const bool instant_dispatch =
          tp->dispatch == aadl::DispatchProtocol::Aperiodic ||
          (tp->dispatch == aadl::DispatchProtocol::Sporadic &&
           tp->period_ns / q == 0);
      if (instant_complete && instant_dispatch) {
        index[t] = nodes.size();
        nodes.push_back(t);
      }
    }
    if (nodes.empty()) return;

    std::vector<std::vector<std::size_t>> adj(nodes.size());
    for (const aadl::SemanticConnection& sc : m.connections) {
      if (sc.kind != aadl::FeatureKind::EventPort &&
          sc.kind != aadl::FeatureKind::EventDataPort)
        continue;
      const auto s = index.find(sc.source);
      const auto d = index.find(sc.destination);
      if (s != index.end() && d != index.end())
        adj[s->second].push_back(d->second);
    }

    // Report each cycle once, anchored at its smallest-index member.
    std::set<std::string> reported;
    for (std::size_t start = 0; start < nodes.size(); ++start) {
      // Iterative DFS tracking the path explicitly; only cycles whose
      // smallest member is `start` are reported (succ < start is pruned).
      std::vector<std::pair<std::size_t, std::size_t>> frames;  // node, next
      frames.emplace_back(start, 0);
      std::set<std::size_t> visited{start};
      while (!frames.empty()) {
        auto& [node, next] = frames.back();
        if (next >= adj[node].size()) {
          frames.pop_back();
          continue;
        }
        const std::size_t succ = adj[node][next++];
        if (succ == start) {
          std::ostringstream cyc;
          for (const auto& fr : frames) cyc << nodes[fr.first]->path << " -> ";
          cyc << nodes[start]->path;
          if (reported.insert(cyc.str()).second) {
            sink.error(nodes[start]->path,
                       "instantaneous dispatch cycle: " + cyc.str() +
                           "; every hop dispatches and completes in zero "
                           "quanta, so dispatches can chase each other "
                           "forever without time advancing (livelock, "
                           "DESIGN.md §7). Give some thread a nonzero "
                           "Compute_Execution_Time minimum or a sporadic "
                           "separation of at least one quantum");
          }
          continue;
        }
        if (succ < start || !visited.insert(succ).second) continue;
        frames.emplace_back(succ, 0);
      }
    }
  }
};

}  // namespace

void register_acsr_passes(Registry& reg) {
  reg.add(std::make_unique<UnguardedRecursionPass>());
  reg.add(std::make_unique<Par3ConflictPass>());
  reg.add(std::make_unique<InstantaneousCyclePass>());
}

}  // namespace aadlsched::lint
