#include "lint/screen_view.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <variant>

namespace aadlsched::lint {

namespace {

using aadl::ComponentInstance;
using aadl::DispatchProtocol;
using aadl::InstanceModel;
using aadl::SchedulingProtocol;

using I128 = __int128;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

I128 gcd128(I128 a, I128 b) {
  while (b != 0) {
    const I128 t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

/// Mirror of translate::Translator::rank(): stable sort ascending by key,
/// priorities group.size()+1 downwards, background floored to 1.
template <typename Key>
void rank(std::vector<ScreenTask>& tasks, Key key) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return key(tasks[a]) < key(tasks[b]);
                   });
  int prio = static_cast<int>(tasks.size()) + 1;
  for (std::size_t idx : order) tasks[idx].priority = prio--;
  for (ScreenTask& t : tasks)
    if (t.dispatch == DispatchProtocol::Background) t.priority = 1;
}

void assign_priorities(ScreenCpu& sc,
                       const std::vector<std::optional<int>>& declared) {
  if (!sc.protocol) return;
  switch (*sc.protocol) {
    case SchedulingProtocol::RateMonotonic:
      rank(sc.tasks, [](const ScreenTask& t) {
        return t.period_q > 0 ? t.period_q : std::int64_t{1} << 40;
      });
      break;
    case SchedulingProtocol::DeadlineMonotonic:
      rank(sc.tasks, [](const ScreenTask& t) {
        return t.deadline_q > 0 ? t.deadline_q : std::int64_t{1} << 40;
      });
      break;
    case SchedulingProtocol::HighestPriorityFirst:
      for (std::size_t i = 0; i < sc.tasks.size(); ++i) {
        ScreenTask& t = sc.tasks[i];
        const int base = declared[i].value_or(0);
        if (base == 0 && t.dispatch != DispatchProtocol::Background)
          sc.priorities_ok = false;
        // Shift by 2 so priorities stay above background (1) and idle.
        t.priority = base + 2;
      }
      break;
    case SchedulingProtocol::Edf:
    case SchedulingProtocol::Llf:
      for (ScreenTask& t : sc.tasks) t.priority = 0;  // dynamic
      break;
  }
}

}  // namespace

std::vector<ScreenCpu> extract_screen_cpus(const Subject& subject) {
  const InstanceModel& m = *subject.instance;
  const std::int64_t q = subject.topts.quantum_ns;
  std::vector<ScreenCpu> cpus;
  if (q <= 0) return cpus;
  for (const ComponentInstance* cpu : m.processors) {
    const auto threads = m.threads_on(cpu);
    if (threads.empty()) continue;
    ScreenCpu sc;
    sc.cpu = cpu;
    util::DiagnosticEngine scratch("<lint>");
    sc.protocol = aadl::scheduling_protocol(m, *cpu, scratch);
    std::vector<std::optional<int>> declared;
    for (const ComponentInstance* t : threads) {
      util::DiagnosticEngine tscratch("<lint>");
      const auto tp = aadl::thread_properties(m, *t, tscratch);
      if (!tp) {
        sc.complete = false;
        continue;
      }
      ScreenTask st;
      st.inst = t;
      st.path = t->path;
      st.dispatch = tp->dispatch;
      st.cmin_q = ceil_div(tp->compute_min_ns, q);
      st.cmax_q = ceil_div(tp->compute_max_ns, q);
      st.period_q = tp->period_ns / q;
      st.deadline_q = tp->deadline_ns / q;
      if (const auto* pv = aadl::find_property(m, *t, "dispatch_offset")) {
        if (const auto* iu = std::get_if<aadl::IntWithUnit>(&pv->data)) {
          util::DiagnosticEngine oscratch("<lint>");
          if (auto ns = aadl::time_to_ns(*iu, oscratch, {}))
            st.offset_q = std::clamp<std::int64_t>(
                *ns / q, 0, std::max<std::int64_t>(st.period_q, 0));
        }
      }
      declared.push_back(tp->priority);
      sc.tasks.push_back(std::move(st));
    }
    assign_priorities(sc, declared);
    cpus.push_back(std::move(sc));
  }
  return cpus;
}

std::optional<int> utilization_vs_one(const std::vector<ScreenTask>& tasks,
                                      bool periodic_only) {
  // Accumulate num/den with gcd reduction; bail out near the 128-bit edge.
  constexpr I128 kCap = static_cast<I128>(1) << 100;
  I128 num = 0, den = 1;
  for (const ScreenTask& t : tasks) {
    if (periodic_only && t.dispatch != DispatchProtocol::Periodic) continue;
    if (t.dispatch == DispatchProtocol::Aperiodic ||
        t.dispatch == DispatchProtocol::Background)
      continue;  // no utilization bound
    if (t.period_q <= 0) continue;  // AL005 flags this
    if (den > kCap / t.period_q) return std::nullopt;
    num = num * t.period_q + static_cast<I128>(t.cmax_q) * den;
    den = den * t.period_q;
    const I128 g = gcd128(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
    if (num > kCap) return std::nullopt;
  }
  if (num > den) return 1;
  if (num < den) return -1;
  return 0;
}

double utilization_double(const std::vector<ScreenTask>& tasks,
                          bool periodic_only) {
  double u = 0;
  for (const ScreenTask& t : tasks) {
    if (periodic_only && t.dispatch != DispatchProtocol::Periodic) continue;
    if (t.dispatch == DispatchProtocol::Aperiodic ||
        t.dispatch == DispatchProtocol::Background)
      continue;
    if (t.period_q <= 0) continue;
    u += static_cast<double>(t.cmax_q) / static_cast<double>(t.period_q);
  }
  return u;
}

std::string utilization_string(const std::vector<ScreenTask>& tasks,
                               bool periodic_only) {
  std::ostringstream os;
  os.precision(4);
  os << utilization_double(tasks, periodic_only);
  return os.str();
}

bool model_is_pure(const InstanceModel& m) {
  for (const aadl::SemanticConnection& sc : m.connections) {
    if (sc.kind == aadl::FeatureKind::EventPort ||
        sc.kind == aadl::FeatureKind::EventDataPort)
      return false;
    if (sc.bus) return false;
  }
  return true;
}

bool all_periodic_implicit(const ScreenCpu& sc) {
  for (const ScreenTask& t : sc.tasks) {
    if (t.dispatch != DispatchProtocol::Periodic) return false;
    if (t.period_q <= 0 || t.deadline_q != t.period_q) return false;
  }
  return !sc.tasks.empty();
}

bool all_periodic_constrained(const ScreenCpu& sc) {
  for (const ScreenTask& t : sc.tasks) {
    if (t.dispatch != DispatchProtocol::Periodic) return false;
    if (t.period_q <= 0 || t.deadline_q <= 0) return false;
    if (t.deadline_q > t.period_q) return false;
  }
  return !sc.tasks.empty();
}

bool all_zero_offsets(const ScreenCpu& sc) {
  return std::all_of(sc.tasks.begin(), sc.tasks.end(),
                     [](const ScreenTask& t) { return t.offset_q == 0; });
}

}  // namespace aadlsched::lint
