// Internal: registration hooks for the built-in pass files. Each
// translation unit in src/lint contributes one tier; Registry::builtin()
// calls all three (explicit registration keeps the passes alive through
// static-library linking).
#pragma once

namespace aadlsched::lint {

class Registry;

void register_model_passes(Registry& reg);      // AL001..AL006
void register_screening_passes(Registry& reg);  // AL007..AL009
void register_exact_passes(Registry& reg);      // AL013..AL016
void register_acsr_passes(Registry& reg);       // AL010..AL012

}  // namespace aadlsched::lint
