// Fast verdict screening (AL007..AL009): per-processor analytical tests
// over the quantized task view, reusing the bounds of src/sched. The
// contract with exploration (DESIGN.md §9):
//
//   * AL007 NotSchedulable claims are *guaranteed counterexamples*: the
//     overload sum ranges over periodic threads only (which dispatch
//     unconditionally) at their quantized WCET (the all-cmax execution is
//     always a reachable choice, because `done` carries priority 0).
//   * AL008/AL009 Schedulable claims are per-processor and only offered
//     when the classical abstraction is *exact*: all threads periodic,
//     implicit deadlines after quantization, and a model with no event
//     connections and no bus bindings (those introduce queues/generators/
//     cross-processor coupling that the bounds do not see). The lint driver
//     additionally requires translation success and no latency observers
//     before promoting them to a whole-model verdict.
//
// All conclusive arithmetic is exact (128-bit integer over the quantized
// values the explorer itself uses); floating point only feeds warnings and
// note-level reporting. Every claim ships a StaticCertificate so an
// independent checker can replay the bound (DESIGN.md §14).
#include <sstream>
#include <string>
#include <vector>

#include "lint/passes.hpp"
#include "lint/screen_view.hpp"
#include "sched/analysis.hpp"

namespace aadlsched::lint {

namespace {

using aadl::DispatchProtocol;
using aadl::SchedulingProtocol;

using I128 = __int128;

/// Certificate rows for the processor's tasks (periodic-only for the
/// overload witness, everything otherwise).
std::vector<CertTask> cert_tasks(const ScreenCpu& sc, bool periodic_only) {
  std::vector<CertTask> rows;
  for (const ScreenTask& t : sc.tasks) {
    if (periodic_only && t.dispatch != DispatchProtocol::Periodic) continue;
    CertTask row;
    row.path = t.path;
    row.wcet_q = t.cmax_q;
    row.period_q = t.period_q;
    row.deadline_q = t.deadline_q;
    row.priority = t.priority;
    rows.push_back(std::move(row));
  }
  return rows;
}

// --- AL007 ----------------------------------------------------------------

class UtilizationOverloadPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL007", "utilization-overload",
        "per-processor utilization of periodic threads > 1 is a guaranteed "
        "deadline miss",
        Tier::Screening, "exact (refute-only)",
        "Periodic threads dispatch unconditionally and the all-WCET "
        "execution is always a reachable branch, so demand above capacity "
        "over the hyperperiod forces a miss that exploration would also "
        "find. The sum is evaluated in exact 128-bit arithmetic over the "
        "same quantized parameters the explorer uses."};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    for (const ScreenCpu& sc : extract_screen_cpus(subject)) {
      const auto periodic_sign = utilization_vs_one(sc.tasks, true);
      if (periodic_sign && *periodic_sign > 0) {
        const std::string u = utilization_string(sc.tasks, true);
        sink.error(sc.cpu->path,
                   "periodic utilization " + u +
                       " exceeds 1: overload is certain, some deadline "
                       "must be missed");
        sink.conclusive(StaticVerdict::NotSchedulable,
                        "processor '" + sc.cpu->path +
                            "' is overloaded by periodic threads alone "
                            "(U = " + u + " > 1)");
        StaticCertificate cert;
        cert.kind = "utilization-overload";
        cert.processor = sc.cpu->path;
        cert.schedulable = false;
        cert.tasks = cert_tasks(sc, true);
        sink.certificate(std::move(cert));
        continue;
      }
      // Sporadic threads at their minimum separation may overstate real
      // arrival rates, so the combined overload is only advisory.
      const double total = utilization_double(sc.tasks, false);
      if ((!periodic_sign || *periodic_sign <= 0) && total > 1.0 + 1e-9)
        sink.warning(sc.cpu->path,
                     "utilization including sporadic threads at maximum "
                     "rate is " + utilization_string(sc.tasks, false) +
                         " > 1: unschedulable under sustained arrivals");
    }
  }
};

// --- AL008 ----------------------------------------------------------------

class RmUtilizationBoundPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL008", "rm-utilization-bound",
        "hyperbolic/Liu-Layland bound for rate-/deadline-monotonic "
        "processors (sufficient)",
        Tier::Screening, "sufficient",
        "Bini's hyperbolic bound prod(U_i + 1) <= 2 is sufficient for "
        "rate-monotonic scheduling of independent periodic tasks with "
        "implicit deadlines; it is only offered when the task abstraction "
        "is exact (pure model), where a schedulable task set means "
        "exploration finds no deadlock."};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    if (!model_is_pure(*subject.instance)) return;
    for (const ScreenCpu& sc : extract_screen_cpus(subject)) {
      if (!sc.complete || !sc.protocol) continue;
      if (*sc.protocol != SchedulingProtocol::RateMonotonic &&
          *sc.protocol != SchedulingProtocol::DeadlineMonotonic)
        continue;
      if (!all_periodic_implicit(sc)) continue;
      bool fits = true;
      for (const ScreenTask& t : sc.tasks)
        if (t.cmax_q > t.period_q) fits = false;
      if (!fits) continue;

      // Hyperbolic bound, exact: prod(c_i + p_i) <= 2 * prod(p_i).
      constexpr I128 kCap = static_cast<I128>(1) << 110;
      I128 lhs = 1, rhs = 2;
      bool exact = true;
      for (const ScreenTask& t : sc.tasks) {
        const I128 a = t.cmax_q + t.period_q, b = t.period_q;
        if (lhs > kCap / a || rhs > kCap / b) {
          exact = false;
          break;
        }
        lhs *= a;
        rhs *= b;
      }
      if (!exact || lhs > rhs) continue;

      const double u = utilization_double(sc.tasks, false);
      const double ll = sched::liu_layland_bound(sc.tasks.size());
      std::ostringstream os;
      os.precision(4);
      os << "U = " << u << " satisfies the hyperbolic bound (LL bound for n="
         << sc.tasks.size() << " is " << ll << ")";
      sink.note(sc.cpu->path, "rate-monotonic bound holds: " + os.str());
      sink.processor_verdict(sc.cpu->path, true, os.str());
      StaticCertificate cert;
      cert.kind = "hyperbolic-bound";
      cert.processor = sc.cpu->path;
      cert.schedulable = true;
      cert.tasks = cert_tasks(sc, false);
      sink.certificate(std::move(cert));
    }
  }
};

// --- AL009 ----------------------------------------------------------------

class EdfUtilizationPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL009", "edf-utilization",
        "U <= 1 is exact for EDF/LLF with periodic implicit-deadline tasks",
        Tier::Screening, "sufficient",
        "U <= 1 is necessary and sufficient for EDF with independent "
        "periodic implicit-deadline tasks on one processor; LLF shares the "
        "optimality argument. Evaluated as an exact fraction; only offered "
        "on pure models where the task abstraction is exact."};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    if (!model_is_pure(*subject.instance)) return;
    for (const ScreenCpu& sc : extract_screen_cpus(subject)) {
      if (!sc.complete || !sc.protocol) continue;
      if (*sc.protocol != SchedulingProtocol::Edf &&
          *sc.protocol != SchedulingProtocol::Llf)
        continue;
      if (!all_periodic_implicit(sc)) continue;
      const auto sign = utilization_vs_one(sc.tasks, false);
      if (!sign || *sign > 0) continue;
      const std::string u = utilization_string(sc.tasks, false);
      sink.note(sc.cpu->path,
                "EDF utilization test holds exactly: U = " + u + " <= 1");
      sink.processor_verdict(sc.cpu->path, true,
                             "EDF utilization U = " + u + " <= 1 (exact)");
      StaticCertificate cert;
      cert.kind = "edf-utilization";
      cert.processor = sc.cpu->path;
      cert.schedulable = true;
      cert.tasks = cert_tasks(sc, false);
      sink.certificate(std::move(cert));
    }
  }
};

}  // namespace

void register_screening_passes(Registry& reg) {
  reg.add(std::make_unique<UtilizationOverloadPass>());
  reg.add(std::make_unique<RmUtilizationBoundPass>());
  reg.add(std::make_unique<EdfUtilizationPass>());
}

}  // namespace aadlsched::lint
