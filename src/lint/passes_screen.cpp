// Fast verdict screening (AL007..AL009): per-processor analytical tests
// over the quantized task view, reusing the bounds of src/sched. The
// contract with exploration (DESIGN.md §9):
//
//   * AL007 NotSchedulable claims are *guaranteed counterexamples*: the
//     overload sum ranges over periodic threads only (which dispatch
//     unconditionally) at their quantized WCET (the all-cmax execution is
//     always a reachable choice, because `done` carries priority 0).
//   * AL008/AL009 Schedulable claims are per-processor and only offered
//     when the classical abstraction is *exact*: all threads periodic,
//     implicit deadlines after quantization, and a model with no event
//     connections and no bus bindings (those introduce queues/generators/
//     cross-processor coupling that the bounds do not see). The lint driver
//     additionally requires translation success and no latency observers
//     before promoting them to a whole-model verdict.
//
// All conclusive arithmetic is exact (128-bit integer over the quantized
// values the explorer itself uses); floating point only feeds warnings and
// note-level reporting.
#include <sstream>
#include <string>
#include <vector>

#include "aadl/properties.hpp"
#include "lint/lint.hpp"
#include "lint/passes.hpp"
#include "sched/analysis.hpp"

namespace aadlsched::lint {

namespace {

using aadl::ComponentInstance;
using aadl::DispatchProtocol;
using aadl::InstanceModel;
using aadl::SchedulingProtocol;

using I128 = __int128;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

I128 gcd128(I128 a, I128 b) {
  while (b != 0) {
    const I128 t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

struct ScreenTask {
  std::string path;
  DispatchProtocol dispatch = DispatchProtocol::Periodic;
  std::int64_t cmin_q = 0, cmax_q = 0, period_q = 0, deadline_q = 0;
};

struct ScreenCpu {
  const ComponentInstance* cpu = nullptr;
  std::optional<SchedulingProtocol> protocol;
  std::vector<ScreenTask> tasks;
  bool complete = true;  // every bound thread yielded full, valid timing
};

/// Quantized per-processor task view. Replicates the translator's rounding
/// (execution times up, periods/deadlines down) so screening sees exactly
/// the parameters exploration would; deliberately does not use
/// core::extract_taskset (core depends on lint, not the other way around).
std::vector<ScreenCpu> extract(const Subject& subject) {
  const InstanceModel& m = *subject.instance;
  const std::int64_t q = subject.topts.quantum_ns;
  std::vector<ScreenCpu> cpus;
  if (q <= 0) return cpus;
  for (const ComponentInstance* cpu : m.processors) {
    const auto threads = m.threads_on(cpu);
    if (threads.empty()) continue;
    ScreenCpu sc;
    sc.cpu = cpu;
    util::DiagnosticEngine scratch("<lint>");
    sc.protocol = aadl::scheduling_protocol(m, *cpu, scratch);
    for (const ComponentInstance* t : threads) {
      util::DiagnosticEngine tscratch("<lint>");
      const auto tp = aadl::thread_properties(m, *t, tscratch);
      if (!tp) {
        sc.complete = false;
        continue;
      }
      ScreenTask st;
      st.path = t->path;
      st.dispatch = tp->dispatch;
      st.cmin_q = ceil_div(tp->compute_min_ns, q);
      st.cmax_q = ceil_div(tp->compute_max_ns, q);
      st.period_q = tp->period_ns / q;
      st.deadline_q = tp->deadline_ns / q;
      sc.tasks.push_back(std::move(st));
    }
    cpus.push_back(std::move(sc));
  }
  return cpus;
}

/// Exact utilization comparison over the quantized view: returns the sign
/// of (sum cmax/period) - 1 as -1/0/+1, or nullopt when the exact
/// accumulation would overflow 128-bit.
std::optional<int> utilization_vs_one(const std::vector<ScreenTask>& tasks,
                                      bool periodic_only) {
  // Accumulate num/den with gcd reduction; bail out near the 128-bit edge.
  constexpr I128 kCap = static_cast<I128>(1) << 100;
  I128 num = 0, den = 1;
  for (const ScreenTask& t : tasks) {
    if (periodic_only && t.dispatch != DispatchProtocol::Periodic) continue;
    if (t.dispatch == DispatchProtocol::Aperiodic ||
        t.dispatch == DispatchProtocol::Background)
      continue;  // no utilization bound
    if (t.period_q <= 0) continue;  // AL005 flags this
    if (den > kCap / t.period_q) return std::nullopt;
    num = num * t.period_q + static_cast<I128>(t.cmax_q) * den;
    den = den * t.period_q;
    const I128 g = gcd128(num, den);
    if (g > 1) {
      num /= g;
      den /= g;
    }
    if (num > kCap) return std::nullopt;
  }
  if (num > den) return 1;
  if (num < den) return -1;
  return 0;
}

double utilization_double(const std::vector<ScreenTask>& tasks,
                          bool periodic_only) {
  double u = 0;
  for (const ScreenTask& t : tasks) {
    if (periodic_only && t.dispatch != DispatchProtocol::Periodic) continue;
    if (t.dispatch == DispatchProtocol::Aperiodic ||
        t.dispatch == DispatchProtocol::Background)
      continue;
    if (t.period_q <= 0) continue;
    u += static_cast<double>(t.cmax_q) / static_cast<double>(t.period_q);
  }
  return u;
}

/// Is the whole model free of features the classical per-processor task
/// abstraction cannot express (event chains, bus contention)?
bool model_is_pure(const InstanceModel& m) {
  for (const aadl::SemanticConnection& sc : m.connections) {
    if (sc.kind == aadl::FeatureKind::EventPort ||
        sc.kind == aadl::FeatureKind::EventDataPort)
      return false;
    if (sc.bus) return false;
  }
  return true;
}

bool all_periodic_implicit(const ScreenCpu& sc) {
  for (const ScreenTask& t : sc.tasks) {
    if (t.dispatch != DispatchProtocol::Periodic) return false;
    if (t.period_q <= 0 || t.deadline_q != t.period_q) return false;
  }
  return !sc.tasks.empty();
}

std::string utilization_string(const std::vector<ScreenTask>& tasks,
                               bool periodic_only) {
  std::ostringstream os;
  os.precision(4);
  os << utilization_double(tasks, periodic_only);
  return os.str();
}

// --- AL007 ----------------------------------------------------------------

class UtilizationOverloadPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL007", "utilization-overload",
        "per-processor utilization of periodic threads > 1 is a guaranteed "
        "deadline miss",
        Tier::Screening};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    for (const ScreenCpu& sc : extract(subject)) {
      const auto periodic_sign = utilization_vs_one(sc.tasks, true);
      if (periodic_sign && *periodic_sign > 0) {
        const std::string u = utilization_string(sc.tasks, true);
        sink.error(sc.cpu->path,
                   "periodic utilization " + u +
                       " exceeds 1: overload is certain, some deadline "
                       "must be missed");
        sink.conclusive(StaticVerdict::NotSchedulable,
                        "processor '" + sc.cpu->path +
                            "' is overloaded by periodic threads alone "
                            "(U = " + u + " > 1)");
        continue;
      }
      // Sporadic threads at their minimum separation may overstate real
      // arrival rates, so the combined overload is only advisory.
      const double total = utilization_double(sc.tasks, false);
      if ((!periodic_sign || *periodic_sign <= 0) && total > 1.0 + 1e-9)
        sink.warning(sc.cpu->path,
                     "utilization including sporadic threads at maximum "
                     "rate is " + utilization_string(sc.tasks, false) +
                         " > 1: unschedulable under sustained arrivals");
    }
  }
};

// --- AL008 ----------------------------------------------------------------

class RmUtilizationBoundPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL008", "rm-utilization-bound",
        "hyperbolic/Liu-Layland bound for rate-/deadline-monotonic "
        "processors (sufficient)",
        Tier::Screening};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    if (!model_is_pure(*subject.instance)) return;
    for (const ScreenCpu& sc : extract(subject)) {
      if (!sc.complete || !sc.protocol) continue;
      if (*sc.protocol != SchedulingProtocol::RateMonotonic &&
          *sc.protocol != SchedulingProtocol::DeadlineMonotonic)
        continue;
      if (!all_periodic_implicit(sc)) continue;
      bool fits = true;
      for (const ScreenTask& t : sc.tasks)
        if (t.cmax_q > t.period_q) fits = false;
      if (!fits) continue;

      // Hyperbolic bound, exact: prod(c_i + p_i) <= 2 * prod(p_i).
      constexpr I128 kCap = static_cast<I128>(1) << 110;
      I128 lhs = 1, rhs = 2;
      bool exact = true;
      for (const ScreenTask& t : sc.tasks) {
        const I128 a = t.cmax_q + t.period_q, b = t.period_q;
        if (lhs > kCap / a || rhs > kCap / b) {
          exact = false;
          break;
        }
        lhs *= a;
        rhs *= b;
      }
      if (!exact || lhs > rhs) continue;

      const double u = utilization_double(sc.tasks, false);
      const double ll = sched::liu_layland_bound(sc.tasks.size());
      std::ostringstream os;
      os.precision(4);
      os << "U = " << u << " satisfies the hyperbolic bound (LL bound for n="
         << sc.tasks.size() << " is " << ll << ")";
      sink.note(sc.cpu->path, "rate-monotonic bound holds: " + os.str());
      sink.processor_verdict(sc.cpu->path, true, os.str());
    }
  }
};

// --- AL009 ----------------------------------------------------------------

class EdfUtilizationPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL009", "edf-utilization",
        "U <= 1 is exact for EDF/LLF with periodic implicit-deadline tasks",
        Tier::Screening};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    if (!model_is_pure(*subject.instance)) return;
    for (const ScreenCpu& sc : extract(subject)) {
      if (!sc.complete || !sc.protocol) continue;
      if (*sc.protocol != SchedulingProtocol::Edf &&
          *sc.protocol != SchedulingProtocol::Llf)
        continue;
      if (!all_periodic_implicit(sc)) continue;
      const auto sign = utilization_vs_one(sc.tasks, false);
      if (!sign || *sign > 0) continue;
      const std::string u = utilization_string(sc.tasks, false);
      sink.note(sc.cpu->path,
                "EDF utilization test holds exactly: U = " + u + " <= 1");
      sink.processor_verdict(sc.cpu->path, true,
                             "EDF utilization U = " + u + " <= 1 (exact)");
    }
  }
};

}  // namespace

void register_screening_passes(Registry& reg) {
  reg.add(std::make_unique<UtilizationOverloadPass>());
  reg.add(std::make_unique<RmUtilizationBoundPass>());
  reg.add(std::make_unique<EdfUtilizationPass>());
}

}  // namespace aadlsched::lint
