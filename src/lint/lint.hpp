// aadllint — static analysis over AADL instance models and translated ACSR
// terms (the production front door: answer cheap questions before paying for
// state-space exploration).
//
// A lint run walks a Subject (instance model + optionally the ACSR
// translation) with every registered Pass. Passes emit structured Findings
// with stable check IDs (AL001..) through a Sink, and screening passes may
// additionally record *conclusive* schedulability verdicts:
//
//   * NotSchedulable  — a guaranteed counterexample exists (per-processor
//     utilization > 1 over periodic threads, or a periodic thread whose
//     quantized WCET exceeds its deadline). Exploration would find the same
//     deadlock; core::Analyzer can skip it.
//   * Schedulable     — a sufficient analytical bound holds on every
//     thread-bearing processor AND the model is pure enough that the
//     classical task abstraction is exact (no event chains, no bus
//     contention, no latency observers). Exploration would agree.
//
// The screening-vs-exploration contract is documented in DESIGN.md §9.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "aadl/instance.hpp"
#include "translate/translator.hpp"
#include "util/diagnostics.hpp"

namespace aadlsched::acsr {
class Context;
}

namespace aadlsched::lint {

enum class Tier : std::uint8_t {
  ModelHygiene,        // instance-model structural/property checks
  Screening,           // fast analytical verdicts reusing src/sched
  AcsrWellFormedness,  // checks over the translated process algebra
};

std::string_view to_string(Tier t);

/// Version of the built-in pass catalogue and its verdict semantics. Bumped
/// whenever passes are added/removed or their conclusions change, so cached
/// service results computed by an older catalogue are not served as fresh
/// (the daemon folds this into its options cache key).
///   v1: AL001..AL012 (PR 2/3).
///   v2: exact screens AL013/AL014, blocking-aware AL015, hazard AL016,
///       machine-checkable certificates.
inline constexpr int kLintPassVersion = 2;

/// Shape version of Report::render_json() output. Additions are
/// backward-compatible and do not bump it; renames/removals do.
inline constexpr int kLintSchemaVersion = 1;

struct CheckInfo {
  std::string_view id;       // stable, e.g. "AL001"
  std::string_view name;     // kebab-case, e.g. "unbound-thread"
  std::string_view summary;  // one line for the catalogue
  Tier tier = Tier::ModelHygiene;
  /// What the pass' verdicts mean: "advisory" (findings only),
  /// "sufficient" (may vouch Schedulable, never refutes), or "exact"
  /// (conclusive either way within its stated fragment).
  std::string_view contract = "advisory";
  /// Why the verdict agrees with exploration (the DESIGN.md §9/§14
  /// soundness argument, one paragraph, for --explain).
  std::string_view rationale = "";
};

struct Finding {
  std::string check_id;
  std::string check_name;
  util::Severity severity = util::Severity::Warning;
  util::SourceLoc loc;
  std::string component;  // instance path / connection / definition name
  std::string message;

  std::string render() const;  // "error: [AL001 unbound-thread] path: msg"
};

enum class StaticVerdict : std::uint8_t { None, Schedulable, NotSchedulable };

std::string_view to_string(StaticVerdict v);

/// A sufficient per-processor claim from a screening pass; the driver
/// combines them into a whole-model Schedulable verdict only when every
/// thread-bearing processor is vouched for (see finalize logic in lint.cpp).
struct ProcessorVerdict {
  std::string processor;  // instance path
  std::string check_id;
  bool schedulable = false;
  std::string detail;
};

/// One task row of a static certificate, in the translator's quantized
/// units and effective (post-protocol) priorities — exactly the parameters
/// exploration itself would use, so a checker needs no AADL frontend.
struct CertTask {
  std::string path;
  std::int64_t wcet_q = 0;
  std::int64_t period_q = 0;
  std::int64_t deadline_q = 0;
  int priority = 0;              // effective fixed priority (0 for EDF)
  std::int64_t blocking_q = 0;   // B_i blocking term (AL015)
  std::int64_t response_q = -1;  // claimed worst-case response (schedulable)
};

/// Machine-checkable witness backing a conclusive static claim. Kinds:
///   "fp-response-bound"     — R_i is a fixed point of the RTA recurrence
///                             (equal-priority tasks counted as
///                             interference) and R_i <= D_i for every task
///   "fp-overload-witness"   — demand on [0, window_q] by the witness task
///                             and its higher-priority tasks is demand_q >
///                             window_q (window_q = the task's deadline)
///   "edf-demand"            — dbf(d) <= d for every absolute deadline
///                             d <= window_q (the QPA check bound)
///   "edf-overflow-witness"  — dbf(window_q) = demand_q > window_q
///   "utilization-overload"  — sum wcet_q/period_q > 1 over the tasks
///   "hyperbolic-bound"      — prod(wcet_q + period_q) <= 2 prod(period_q)
///   "edf-utilization"       — sum wcet_q/period_q <= 1 (implicit deadlines)
///   "wcet-exceeds-deadline" — single task with wcet_q > deadline_q
struct StaticCertificate {
  std::string check_id;   // emitting pass
  std::string kind;
  std::string processor;  // instance path ("" for single-thread witnesses)
  bool schedulable = false;
  std::vector<CertTask> tasks;
  std::int64_t window_q = -1;  // checked horizon / witness window
  std::int64_t demand_q = -1;  // demand over the witness window
};

struct Report {
  std::vector<Finding> findings;
  /// Witnesses for every conclusive or per-processor claim made by the
  /// screening tier; each is independently checkable even when no
  /// whole-model verdict was promoted.
  std::vector<StaticCertificate> certificates;
  StaticVerdict verdict = StaticVerdict::None;
  std::string decided_by;  // check id(s) that produced the verdict
  std::string verdict_detail;
  std::vector<ProcessorVerdict> processor_verdicts;
  std::vector<std::string> skipped;  // check ids not run (missing subject)
  /// Did the model translate to ACSR? core::Analyzer only honors conclusive
  /// verdicts on translatable models (otherwise exploration could not have
  /// produced a verdict to agree with).
  bool translated = false;

  std::size_t count(util::Severity sev) const;
  std::size_t errors() const { return count(util::Severity::Error); }
  std::size_t warnings() const { return count(util::Severity::Warning); }
  /// Any finding at or above the given severity?
  bool fails(util::Severity fail_on) const;

  std::string render_text() const;
  /// Machine-readable report (stable shape; the CI-gate hook, ROADMAP).
  std::string render_json() const;
};

/// What a pass may look at. `instance` is null for ACSR-only runs
/// (lint::run_acsr); `acsr`/`translation` are null when translation failed
/// or was not attempted.
struct Subject {
  const aadl::InstanceModel* instance = nullptr;
  const acsr::Context* acsr = nullptr;
  const translate::Translation* translation = nullptr;
  translate::TranslateOptions topts;  // quantum etc. for screening passes
};

class Sink {
 public:
  Sink(Report& report, util::DiagnosticEngine* mirror)
      : report_(report), mirror_(mirror) {}

  void set_current(const CheckInfo* info) { current_ = info; }

  void report(util::Severity sev, util::SourceLoc loc, std::string component,
              std::string message);
  void note(std::string component, std::string message) {
    report(util::Severity::Note, {}, std::move(component), std::move(message));
  }
  void warning(std::string component, std::string message) {
    report(util::Severity::Warning, {}, std::move(component),
           std::move(message));
  }
  void error(std::string component, std::string message) {
    report(util::Severity::Error, {}, std::move(component),
           std::move(message));
  }

  /// Record a conclusive whole-model verdict. NotSchedulable wins over
  /// Schedulable; the first pass to decide names `decided_by`.
  void conclusive(StaticVerdict v, std::string detail);
  /// Record a sufficient per-processor schedulability claim.
  void processor_verdict(std::string processor, bool schedulable,
                         std::string detail);
  /// Attach a machine-checkable witness (check_id is filled in from the
  /// running pass).
  void certificate(StaticCertificate cert);

 private:
  Report& report_;
  util::DiagnosticEngine* mirror_;
  const CheckInfo* current_ = nullptr;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const CheckInfo& info() const = 0;
  /// Does the pass read the AADL instance model? (default yes)
  virtual bool needs_instance() const { return true; }
  /// Does the pass read the translated ACSR context? (default no)
  virtual bool needs_acsr() const { return false; }
  virtual void run(const Subject& subject, Sink& sink) const = 0;
};

class Registry {
 public:
  void add(std::unique_ptr<Pass> pass);
  const std::vector<std::unique_ptr<Pass>>& passes() const { return passes_; }
  /// Look up by check id ("AL007") or name ("utilization-overload").
  const Pass* find(std::string_view id_or_name) const;

  /// The built-in pass catalogue (constructed once, immutable).
  static const Registry& builtin();

 private:
  std::vector<std::unique_ptr<Pass>> passes_;
};

struct Options {
  /// Quantum and time model the screening passes mirror; also used by
  /// lint::run to translate the model for the ACSR-tier passes.
  translate::TranslateOptions translation;
  /// Severity at which Report::fails() trips (core::Analyzer aborts there).
  util::Severity fail_on = util::Severity::Error;
  /// Check ids or names to skip.
  std::vector<std::string> disabled;
  /// Optional mirror: findings are also reported here as
  /// "[AL001 unbound-thread] message".
  util::DiagnosticEngine* diags = nullptr;
  /// Pass catalogue override (default Registry::builtin()).
  const Registry* registry = nullptr;
};

/// Lint an instance model. Translates into a scratch acsr::Context for the
/// ACSR-tier passes; when translation fails those passes are recorded in
/// Report::skipped (the hygiene passes explain why).
Report run(const aadl::InstanceModel& instance, const Options& opts = {});

/// Lint a hand-built ACSR context (ACSR-tier passes only).
Report run_acsr(const acsr::Context& ctx, const Options& opts = {});

/// Lint an explicit subject (power users / tests).
Report run_subject(const Subject& subject, const Options& opts = {});

}  // namespace aadlsched::lint
