// Model-hygiene passes (AL001..AL006): structural and property checks over
// the AADL instance model, mirroring the paper's §4.1 preconditions and the
// §4.4 queue semantics. These catch the errors the translator would reject
// — plus the ones it silently tolerates (dead-end connection chains,
// unknown feature names, queue properties that translation ignores).
#include <functional>
#include <set>
#include <string>
#include <utility>

#include "aadl/properties.hpp"
#include "lint/lint.hpp"
#include "lint/passes.hpp"
#include "util/string_utils.hpp"

namespace aadlsched::lint {

namespace {

using aadl::ComponentInstance;
using aadl::ConnectionDecl;
using aadl::Direction;
using aadl::Feature;
using aadl::FeatureKind;
using aadl::InstanceModel;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

void for_each_instance(const ComponentInstance* inst,
                       const std::function<void(const ComponentInstance&)>& f) {
  f(*inst);
  for (const auto& child : inst->children)
    for_each_instance(child.get(), f);
}

bool is_access(std::optional<FeatureKind> k) {
  return k && (*k == FeatureKind::BusAccess || *k == FeatureKind::DataAccess);
}

/// Raw timing view of a thread, read leniently: absent or malformed values
/// stay nullopt (AL004 reports missing mandatory properties; here we only
/// judge values that are present).
struct RawTiming {
  std::optional<aadl::DispatchProtocol> dispatch;
  std::optional<std::int64_t> period_ns;
  std::optional<std::int64_t> deadline_ns;  // Compute_Deadline wins
  std::optional<std::int64_t> cmin_ns, cmax_ns;
};

std::optional<aadl::DispatchProtocol> parse_dispatch(
    const InstanceModel& model, const ComponentInstance& thread) {
  const aadl::PropertyValue* pv =
      aadl::find_property(model, thread, "dispatch_protocol");
  if (!pv) return std::nullopt;
  const auto* s = std::get_if<std::string>(&pv->data);
  if (!s) return std::nullopt;
  if (util::iequals(*s, "periodic")) return aadl::DispatchProtocol::Periodic;
  if (util::iequals(*s, "sporadic")) return aadl::DispatchProtocol::Sporadic;
  if (util::iequals(*s, "aperiodic")) return aadl::DispatchProtocol::Aperiodic;
  if (util::iequals(*s, "background"))
    return aadl::DispatchProtocol::Background;
  return std::nullopt;
}

std::optional<std::int64_t> time_prop(const InstanceModel& model,
                                      const ComponentInstance& inst,
                                      std::string_view name) {
  const aadl::PropertyValue* pv = aadl::find_property(model, inst, name);
  if (!pv) return std::nullopt;
  const auto* iu = std::get_if<aadl::IntWithUnit>(&pv->data);
  if (!iu) return std::nullopt;
  util::DiagnosticEngine scratch("<lint>");
  return aadl::time_to_ns(*iu, scratch, {});
}

RawTiming read_timing(const InstanceModel& model,
                      const ComponentInstance& thread) {
  RawTiming rt;
  rt.dispatch = parse_dispatch(model, thread);
  rt.period_ns = time_prop(model, thread, "period");
  rt.deadline_ns = time_prop(model, thread, "compute_deadline");
  if (!rt.deadline_ns) rt.deadline_ns = time_prop(model, thread, "deadline");
  if (const aadl::PropertyValue* pv =
          aadl::find_property(model, thread, "compute_execution_time")) {
    util::DiagnosticEngine scratch("<lint>");
    if (const auto* r = std::get_if<aadl::RangeValue>(&pv->data)) {
      rt.cmin_ns = aadl::time_to_ns(r->lo, scratch, {});
      rt.cmax_ns = aadl::time_to_ns(r->hi, scratch, {});
    } else if (const auto* iu = std::get_if<aadl::IntWithUnit>(&pv->data)) {
      rt.cmin_ns = rt.cmax_ns = aadl::time_to_ns(*iu, scratch, {});
    }
  }
  return rt;
}

// --- AL001 ----------------------------------------------------------------

class UnboundThreadPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL001", "unbound-thread",
        "every thread must be bound to a processor (§4.1 precondition)",
        Tier::ModelHygiene};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    const InstanceModel& m = *subject.instance;
    for (const ComponentInstance* t : m.threads) {
      if (!m.bindings.count(t))
        sink.error(t->path,
                   "thread has no processor binding "
                   "(Actual_Processor_Binding is required, paper §4.1)");
    }
  }
};

// --- AL002 ----------------------------------------------------------------

class UnresolvedEndpointPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL002", "unresolved-endpoint",
        "connection endpoints must name existing subcomponents and features "
        "with compatible directions",
        Tier::ModelHygiene};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    for_each_instance(subject.instance->root.get(),
                      [&](const ComponentInstance& inst) {
                        if (!inst.impl) return;
                        for (const ConnectionDecl& cd : inst.impl->connections)
                          if (!is_access(cd.kind) && !cd.bidirectional)
                            check_decl(inst, cd, sink);
                      });
  }

 private:
  static void check_decl(const ComponentInstance& inst,
                         const ConnectionDecl& cd, Sink& sink) {
    check_endpoint(inst, cd, cd.source, /*is_source=*/true, sink);
    check_endpoint(inst, cd, cd.destination, /*is_source=*/false, sink);
  }

  static void check_endpoint(const ComponentInstance& inst,
                             const ConnectionDecl& cd,
                             const std::vector<std::string>& path,
                             bool is_source, Sink& sink) {
    const std::string where =
        (inst.path.empty() ? std::string("<root>") : inst.path) +
        " connection '" + cd.name + "'";
    if (path.empty() || path.size() > 2) return;  // parser/instantiator error
    const ComponentInstance* target = &inst;
    if (path.size() == 2) {
      target = inst.find_child(path[0]);
      if (!target) {
        sink.report(util::Severity::Error, cd.loc, where,
                    "endpoint '" + util::join(path, ".") +
                        "': no subcomponent '" + path[0] + "'");
        return;
      }
    }
    if (!target->type) return;  // unresolved classifier: cannot judge
    const std::string& port = path.back();
    const Feature* f = target->type->find_feature(port);
    if (!f) {
      // `extends` chains are not flattened by the front end; only claim
      // absence when the type stands alone.
      if (target->type->extends.empty()) {
        sink.report(util::Severity::Error, cd.loc, where,
                    "endpoint '" + util::join(path, ".") +
                        "': component type '" + target->type->display_name +
                        "' has no feature '" + port + "'");
      }
      return;
    }
    if (f->kind == FeatureKind::BusAccess || f->kind == FeatureKind::DataAccess)
      return;
    if (f->direction == Direction::InOut) return;
    // A 2-segment endpoint crosses into a child: sources must leave the
    // child (out), destinations enter it (in). A 1-segment endpoint is the
    // enclosing component's own boundary feature, where the polarity flips.
    const bool wants_out = (path.size() == 2) == is_source;
    const bool is_out = f->direction == Direction::Out;
    if (is_out != wants_out) {
      sink.report(util::Severity::Warning, cd.loc, where,
                  "endpoint '" + util::join(path, ".") + "' uses " +
                      (is_out ? "an out" : "an in") + " port as a " +
                      (is_source ? "source" : "destination"));
    }
  }
};

// --- AL003 ----------------------------------------------------------------

class DeadEndConnectionPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL003", "dead-end-connection",
        "thread/device port connections should reach another thread or "
        "device (dead-end chains are silently dropped by instantiation)",
        Tier::ModelHygiene};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    const InstanceModel& m = *subject.instance;
    std::set<std::pair<const ComponentInstance*, std::string>> sem_src,
        sem_dst;
    for (const aadl::SemanticConnection& sc : m.connections) {
      sem_src.insert({sc.source, sc.source_port});
      sem_dst.insert({sc.destination, sc.destination_port});
    }
    for_each_instance(m.root.get(), [&](const ComponentInstance& inst) {
      if (!inst.impl) return;
      for (const ConnectionDecl& cd : inst.impl->connections) {
        if (is_access(cd.kind)) continue;
        check_side(inst, cd, cd.source, sem_src, /*is_source=*/true, sink);
        check_side(inst, cd, cd.destination, sem_dst, /*is_source=*/false,
                   sink);
      }
    });
  }

 private:
  static void check_side(
      const ComponentInstance& inst, const ConnectionDecl& cd,
      const std::vector<std::string>& path,
      const std::set<std::pair<const ComponentInstance*, std::string>>& sem,
      bool is_source, Sink& sink) {
    if (path.size() != 2) return;
    const ComponentInstance* child = inst.find_child(path[0]);
    if (!child || !child->is_thread_or_device()) return;
    const Feature* f =
        child->type ? child->type->find_feature(path[1]) : nullptr;
    if (!f) return;  // AL002's business
    if (f->kind == FeatureKind::BusAccess || f->kind == FeatureKind::DataAccess)
      return;
    if (is_source && f->direction == Direction::In) return;
    if (!is_source && f->direction == Direction::Out) return;
    if (sem.count({child, util::to_lower(path[1])})) return;
    sink.report(util::Severity::Warning, cd.loc,
                child->path + "." + path[1],
                std::string(is_source ? "output" : "input") +
                    " port is connected (connection '" + cd.name +
                    "') but the chain never reaches a thread or device; "
                    "instantiation drops it silently");
  }
};

// --- AL004 ----------------------------------------------------------------

class MissingPropertyPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL004", "missing-property",
        "mandatory timing/dispatch/scheduling properties must be present "
        "(§4.1)",
        Tier::ModelHygiene};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    const InstanceModel& m = *subject.instance;
    for (const ComponentInstance* t : m.threads) {
      const RawTiming rt = read_timing(m, *t);
      if (!aadl::find_property(m, *t, "dispatch_protocol")) {
        sink.error(t->path, "missing Dispatch_Protocol (required, §4.1)");
      } else if (!rt.dispatch) {
        sink.error(t->path, "Dispatch_Protocol is not a supported protocol "
                            "(Periodic/Sporadic/Aperiodic/Background)");
      }
      if (!aadl::find_property(m, *t, "compute_execution_time"))
        sink.error(t->path, "missing Compute_Execution_Time (required)");
      if (rt.dispatch &&
          (*rt.dispatch == aadl::DispatchProtocol::Periodic ||
           *rt.dispatch == aadl::DispatchProtocol::Sporadic) &&
          !aadl::find_property(m, *t, "period"))
        sink.error(t->path, "missing Period (required for " +
                                std::string(to_string(*rt.dispatch)) + ")");
      if (rt.dispatch && *rt.dispatch == aadl::DispatchProtocol::Aperiodic &&
          !rt.deadline_ns)
        sink.error(t->path,
                   "missing Deadline/Compute_Deadline (required for "
                   "Aperiodic)");
    }
    for (const ComponentInstance* cpu : m.processors) {
      if (m.threads_on(cpu).empty()) continue;
      if (!aadl::find_property(m, *cpu, "scheduling_protocol"))
        sink.error(cpu->path,
                   "missing Scheduling_Protocol (required when threads are "
                   "bound, §4.1)");
    }
  }
};

// --- AL005 ----------------------------------------------------------------

class InconsistentTimingPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL005", "inconsistent-timing",
        "timing properties must be mutually consistent and survive "
        "quantization (cmin <= cmax, deadline <= period, period >= quantum)",
        Tier::ModelHygiene, "exact (refute-only)",
        "Mostly advisory hygiene, but a periodic thread whose quantized "
        "WCET exceeds its quantized deadline misses even when it runs "
        "alone, and the all-WCET execution is always a reachable branch of "
        "the exploration — so that specific finding refutes conclusively."};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    const InstanceModel& m = *subject.instance;
    const std::int64_t q = subject.topts.quantum_ns;
    for (const ComponentInstance* t : m.threads) {
      const RawTiming rt = read_timing(m, *t);
      if (rt.cmin_ns && rt.cmax_ns && *rt.cmin_ns > *rt.cmax_ns)
        sink.error(t->path, "Compute_Execution_Time has min > max");

      const bool periodic =
          rt.dispatch && *rt.dispatch == aadl::DispatchProtocol::Periodic;
      const bool sporadic =
          rt.dispatch && *rt.dispatch == aadl::DispatchProtocol::Sporadic;
      std::optional<std::int64_t> deadline = rt.deadline_ns;
      if (!deadline && periodic) deadline = rt.period_ns;  // implicit

      if ((periodic || sporadic) && rt.deadline_ns && rt.period_ns &&
          *rt.deadline_ns > *rt.period_ns) {
        if (periodic)
          sink.error(t->path,
                     "Deadline exceeds Period (the translator requires "
                     "constrained deadlines for periodic threads)");
        else
          sink.warning(t->path,
                       "Deadline exceeds the sporadic minimum separation "
                       "(Period); analysis treats it as unconstrained");
      }

      if (q > 0 && rt.period_ns && *rt.period_ns > 0 && *rt.period_ns / q == 0)
        sink.error(t->path,
                   "Period (" + std::to_string(*rt.period_ns) +
                       " ns) is smaller than the scheduling quantum (" +
                       std::to_string(q) +
                       " ns): it rounds down to zero quanta");

      if (q > 0 && rt.cmax_ns && deadline && *deadline > 0) {
        const std::int64_t cmax_q = ceil_div(*rt.cmax_ns, q);
        const std::int64_t dl_q = *deadline / q;
        if (dl_q > 0 && cmax_q > dl_q) {
          sink.error(t->path,
                     "worst-case execution time (" + std::to_string(cmax_q) +
                         " quanta) exceeds the deadline (" +
                         std::to_string(dl_q) +
                         " quanta) after quantization");
          // A periodic thread dispatches unconditionally, and the explorer
          // always contains the all-cmax execution (`done` is a choice), so
          // this miss is guaranteed reachable.
          if (periodic) {
            sink.conclusive(
                StaticVerdict::NotSchedulable,
                "periodic thread '" + t->path + "' cannot meet its deadline "
                "even alone (cmax " + std::to_string(cmax_q) +
                    " > deadline " + std::to_string(dl_q) + " quanta)");
            StaticCertificate cert;
            cert.kind = "wcet-exceeds-deadline";
            cert.schedulable = false;
            CertTask row;
            row.path = t->path;
            row.wcet_q = cmax_q;
            row.period_q = rt.period_ns ? *rt.period_ns / q : 0;
            row.deadline_q = dl_q;
            cert.tasks.push_back(std::move(row));
            cert.window_q = dl_q;
            cert.demand_q = cmax_q;
            sink.certificate(std::move(cert));
          }
        }
      }
    }
  }
};

// --- AL006 ----------------------------------------------------------------

class QueueMisconfigPass final : public Pass {
 public:
  const CheckInfo& info() const override {
    static const CheckInfo kInfo{
        "AL006", "queue-misconfig",
        "Queue_Size/Overflow_Handling_Protocol must be valid and attached "
        "to a connection that actually gets a queue (§4.4)",
        Tier::ModelHygiene};
    return kInfo;
  }
  void run(const Subject& subject, Sink& sink) const override {
    const InstanceModel& m = *subject.instance;
    for (const aadl::SemanticConnection& sc : m.connections) {
      const aadl::PropertyValue* qs =
          aadl::find_connection_property(m, sc, "queue_size");
      const aadl::PropertyValue* of =
          aadl::find_connection_property(m, sc, "overflow_handling_protocol");
      if (qs) {
        const auto* iu = std::get_if<aadl::IntWithUnit>(&qs->data);
        if (!iu)
          sink.error(sc.describe(), "Queue_Size must be an integer");
        else if (iu->value < 1 || iu->value > 1024)
          sink.error(sc.describe(),
                     "Queue_Size " + std::to_string(iu->value) +
                         " out of range [1, 1024]");
      }
      if (of) {
        const auto* s = std::get_if<std::string>(&of->data);
        if (!s || (!util::iequals(*s, "error") &&
                   !util::iequals(*s, "dropoldest") &&
                   !util::iequals(*s, "dropnewest")))
          sink.warning(sc.describe(),
                       "unknown Overflow_Handling_Protocol" +
                           (s ? " '" + *s + "'" : std::string()) +
                           "; translation defaults to DropNewest");
      }
      if (!qs && !of) continue;
      const bool is_event = sc.kind == FeatureKind::EventPort ||
                            sc.kind == FeatureKind::EventDataPort;
      if (!is_event) {
        sink.warning(sc.describe(),
                     "queue properties on a data port connection have no "
                     "effect (data ports are sampled, not queued)");
        continue;
      }
      if (sc.destination && sc.destination->category == aadl::Category::Thread) {
        const RawTiming rt = read_timing(m, *sc.destination);
        if (rt.dispatch &&
            (*rt.dispatch == aadl::DispatchProtocol::Periodic ||
             *rt.dispatch == aadl::DispatchProtocol::Background))
          sink.warning(sc.describe(),
                       "queue properties are ignored: translation only "
                       "instantiates queues for sporadic/aperiodic "
                       "destinations (§4.4), and '" + sc.destination->path +
                           "' is " + std::string(to_string(*rt.dispatch)));
      }
    }
  }
};

}  // namespace

void register_model_passes(Registry& reg) {
  reg.add(std::make_unique<UnboundThreadPass>());
  reg.add(std::make_unique<UnresolvedEndpointPass>());
  reg.add(std::make_unique<DeadEndConnectionPass>());
  reg.add(std::make_unique<MissingPropertyPass>());
  reg.add(std::make_unique<InconsistentTimingPass>());
  reg.add(std::make_unique<QueueMisconfigPass>());
}

}  // namespace aadlsched::lint
