// Open terms: the bodies of parameterized process definitions.
//
// Open terms may reference definition parameters through expressions
// (priorities, timeouts, call arguments) and guards (Cond nodes). They are
// built once — by the AADL translator or by tests/examples through the
// Builder — and instantiated to ground terms on demand when a definition
// call is unfolded during exploration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "acsr/ids.hpp"

namespace aadlsched::acsr {

enum class OpenKind : std::uint8_t {
  Nil,
  Act,
  Evt,
  Choice,
  Parallel,
  Restrict,
  Scope,
  Call,
  Cond,  // guard: behaves as its body when the guard holds, NIL otherwise
};

/// One resource access with a priority that may depend on parameters. This
/// is where the EDF/LLF encodings of §5 live.
struct OpenResourceUse {
  Resource resource = 0;
  ExprId priority = 0;
};

struct OpenTermNode {
  OpenKind kind = OpenKind::Nil;

  // Act
  std::vector<OpenResourceUse> action;
  // Evt
  Event event = 0;
  bool send = false;
  ExprId priority = 0;
  // Act / Evt continuation; Restrict / Scope / Cond body
  OpenTermId cont = kInvalidOpenTerm;
  // Choice / Parallel
  std::vector<OpenTermId> children;
  // Restrict
  std::vector<Event> restricted;
  // Scope
  ExprId timeout = 0;  // evaluated; negative result = no timeout
  Event exception_label = 0;
  OpenTermId exception_cont = kInvalidOpenTerm;
  OpenTermId interrupt_handler = kInvalidOpenTerm;
  OpenTermId timeout_handler = kInvalidOpenTerm;
  // Call
  DefId def = kInvalidDef;
  std::vector<ExprId> args;
  // Cond
  CondId guard = kCondTrue;
};

/// What a definition represents at the AADL level; drives trace lift-back.
enum class DefRole : std::uint8_t {
  Generic,      // hand-built process (tests, playground)
  ThreadState,  // a state of a thread's semantic automaton (Fig. 4/5)
  Dispatcher,   // dispatcher process (Fig. 6)
  Queue,        // connection queue process (§4.4)
  Observer,     // end-to-end latency observer (§5)
};

struct Definition {
  std::string name;                      // unique process name
  std::vector<std::string> params;       // parameter names
  OpenTermId body = kInvalidOpenTerm;

  // Lift-back metadata (empty/default for generic processes).
  DefRole role = DefRole::Generic;
  std::string aadl_path;    // instance path of the AADL component
  std::string state_name;   // automaton state, e.g. "Compute"
};

}  // namespace aadlsched::acsr
