// Transition labels of the ACSR operational semantics.
//
// A step is either a timed action (one scheduling quantum, a set of resource
// accesses), an instantaneous event offer (send/receive), or an internal tau
// step produced by CCS-style synchronization of a matching send/receive
// pair. A tau remembers the label it synchronized on so traces can print
// "tau@dispatch_hci_refspeed" as in the paper (§3).
#pragma once

#include <cstdint>
#include <string>

#include "acsr/ids.hpp"

namespace aadlsched::acsr {

class Context;

struct Label {
  enum class Kind : std::uint8_t { Action, Event, Tau };

  Kind kind = Kind::Action;
  ActionId action = kIdleAction;  // Kind::Action
  Event event = 0;                // Kind::Event label; Kind::Tau sync source
  bool send = false;              // Kind::Event direction
  Priority priority = 0;          // Kind::Event / Kind::Tau

  static Label make_action(ActionId a) {
    Label l;
    l.kind = Kind::Action;
    l.action = a;
    return l;
  }
  static Label make_event(Event e, bool send, Priority p) {
    Label l;
    l.kind = Kind::Event;
    l.event = e;
    l.send = send;
    l.priority = p;
    return l;
  }
  static Label make_tau(Event source, Priority p) {
    Label l;
    l.kind = Kind::Tau;
    l.event = source;
    l.priority = p;
    return l;
  }

  bool is_timed() const { return kind == Kind::Action; }

  friend bool operator==(const Label&, const Label&) = default;
};

/// A single transition of the (prioritized or unprioritized) relation.
struct Transition {
  Label label;
  TermId target = kNil;

  friend bool operator==(const Transition&, const Transition&) = default;
};

/// Human-readable label, e.g. "{(bus,1),(cpu,3)}", "done!:1", "tau@done:2".
/// Resource uses are rendered in name order.
std::string render_label(const Context& ctx, const Label& label);

/// Render just a timed action.
std::string render_action(const Context& ctx, ActionId action);

}  // namespace aadlsched::acsr
