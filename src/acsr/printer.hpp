// Pretty-printer for ACSR definitions and ground terms.
//
// The concrete syntax is VERSA-flavoured:
//
//   Compute[e, t] =
//       (e < 4) -> {(cpu,3)} : Compute[e + 1, t + 1]
//     + (e >= 2) -> (done!,1) . AwaitDispatch
//
// The same syntax is accepted back by acsr::Parser (round-trip tested), so
// a translated AADL model can be dumped, inspected and re-analyzed exactly
// like the paper's OSATE plugin emits VERSA input.
#pragma once

#include <string>

#include "acsr/context.hpp"

namespace aadlsched::acsr {

class Printer {
 public:
  explicit Printer(const Context& ctx) : ctx_(ctx) {}

  std::string open_term(OpenTermId id,
                        std::span<const std::string> params) const;
  std::string ground_term(TermId id) const;
  std::string definition(DefId id) const;
  /// Every definition in the context, in definition order.
  std::string module() const;

 private:
  const Context& ctx_;
};

}  // namespace aadlsched::acsr
