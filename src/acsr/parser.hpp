// Parser for the VERSA-flavoured ACSR concrete syntax emitted by Printer.
//
// module     ::= definition*
// definition ::= NAME [ '[' NAME (',' NAME)* ']' ] '=' term
// term       ::= par
// par        ::= sum ('||' sum)*
// sum        ::= prefix ('+' prefix)*
// prefix     ::= primary [ '\' '{' NAME (',' NAME)* '}' ]
// primary    ::= 'NIL'
//              | '{' uses '}' ':' prefix                (timed action)
//              | '(' NAME ('!'|'?') ',' expr ')' '.' prefix   (event)
//              | '(' cond ')' '->' prefix               (guard)
//              | '(' term ')'
//              | 'scope' '(' term ',' expr scope-tail ')'
//              | NAME [ '[' expr (',' expr)* ']' ]      (call)
//
// '(' is ambiguous between event prefix, guard and grouping; the parser
// resolves it with bounded backtracking. Priorities/guards may reference
// the parameters of the enclosing definition by name.
#pragma once

#include <optional>
#include <string_view>

#include "acsr/context.hpp"
#include "util/diagnostics.hpp"

namespace aadlsched::acsr {

/// Parse a module of definitions into `ctx`. Returns true on success;
/// errors are reported into `diags`.
bool parse_module(Context& ctx, std::string_view source,
                  util::DiagnosticEngine& diags);

/// Parse one *ground* term — the single-line syntax Printer::ground_term
/// emits: every priority, timeout and call argument is an integer literal
/// (or `inf`), and guards have been evaluated away. The term is built
/// directly in the ground TermTable (no open-term intermediates), so a
/// checkpoint restore does not bloat the open-term arena. Definitions
/// referenced by calls must already exist in `ctx` (parse the module
/// first); an unknown name is an error, which doubles as a corruption
/// check. Returns kInvalidTerm on error (reported into `diags`).
TermId parse_ground_term(Context& ctx, std::string_view source,
                         util::DiagnosticEngine& diags);

}  // namespace aadlsched::acsr
