#include "acsr/action.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace aadlsched::acsr {

namespace {

std::uint64_t hash_uses(std::span<const ResourceUse> uses) {
  std::uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const ResourceUse& u : uses) {
    h = util::hash_combine(h, u.resource);
    h = util::hash_combine(h, static_cast<std::uint32_t>(u.priority));
  }
  return h;
}

std::uint64_t hash_events(std::span<const Event> es) {
  std::uint64_t h = 0xc3a5c85c97cb3127ULL;
  for (Event e : es) h = util::hash_combine(h, e);
  return h;
}

}  // namespace

namespace {
constexpr ActionId kNoAction = static_cast<ActionId>(-1);
constexpr EventSetId kNoEventSet = static_cast<EventSetId>(-1);
}  // namespace

ActionTable::ActionTable() {
  // ActionId 0: the empty (idling) action.
  actions_.push_back({});
  const std::uint64_t h = hash_uses(actions_[0]);
  shards_[h % kIndexShards].buckets[h].push_back(0);
}

ActionId ActionTable::find_in_bucket(
    const IndexShard& shard, std::uint64_t h,
    const std::vector<ResourceUse>& uses) const {
  const auto it = shard.buckets.find(h);
  if (it == shard.buckets.end()) return kNoAction;
  for (ActionId id : it->second)
    if (actions_[id] == uses) return id;
  return kNoAction;
}

ActionId ActionTable::intern(std::vector<ResourceUse> uses) {
  std::sort(uses.begin(), uses.end());
  // Collapse duplicate resources, keeping the highest priority.
  std::size_t w = 0;
  for (std::size_t r = 0; r < uses.size(); ++r) {
    if (w > 0 && uses[w - 1].resource == uses[r].resource) {
      uses[w - 1].priority = std::max(uses[w - 1].priority, uses[r].priority);
    } else {
      uses[w++] = uses[r];
    }
  }
  uses.resize(w);

  const std::uint64_t h = hash_uses(uses);
  IndexShard& shard = shards_[h % kIndexShards];

  if (!shared_) {
    if (const ActionId hit = find_in_bucket(shard, h, uses); hit != kNoAction)
      return hit;
    const ActionId id = static_cast<ActionId>(actions_.push_back(std::move(uses)));
    shard.buckets[h].push_back(id);
    return id;
  }

  std::lock_guard shard_lk(shard.mu);
  if (const ActionId hit = find_in_bucket(shard, h, uses); hit != kNoAction)
    return hit;
  ActionId id;
  {
    std::lock_guard append_lk(append_mu_);
    id = static_cast<ActionId>(actions_.push_back(std::move(uses)));
  }
  shard.buckets[h].push_back(id);
  return id;
}

bool ActionTable::disjoint(ActionId a, ActionId b) const {
  const auto& ua = actions_[a];
  const auto& ub = actions_[b];
  std::size_t i = 0, j = 0;
  while (i < ua.size() && j < ub.size()) {
    if (ua[i].resource == ub[j].resource) return false;
    if (ua[i].resource < ub[j].resource)
      ++i;
    else
      ++j;
  }
  return true;
}

ActionId ActionTable::merge(ActionId a, ActionId b) {
  if (a == kIdleAction) return b;
  if (b == kIdleAction) return a;
  // Copy before intern: intern() may grow actions_ and invalidate refs.
  std::vector<ResourceUse> merged = actions_[a];
  const std::vector<ResourceUse> ub = actions_[b];
  merged.insert(merged.end(), ub.begin(), ub.end());
  return intern(std::move(merged));
}

bool ActionTable::preempts(ActionId a, ActionId b) const {
  if (a == b) return false;
  const auto& ua = actions_[a];
  const auto& ub = actions_[b];
  // Condition 1: every resource of a appears in b with >= priority.
  // Condition 2: some resource of b has strictly greater priority than its
  // priority in a (0 when absent from a).
  std::size_t i = 0;
  bool strictly_greater = false;
  for (const ResourceUse& rb : ub) {
    while (i < ua.size() && ua[i].resource < rb.resource) {
      return false;  // resource of a missing from b
    }
    if (i < ua.size() && ua[i].resource == rb.resource) {
      if (rb.priority < ua[i].priority) return false;
      if (rb.priority > ua[i].priority) strictly_greater = true;
      ++i;
    } else {
      if (rb.priority > 0) strictly_greater = true;
    }
  }
  if (i < ua.size()) return false;  // leftover resources of a not in b
  return strictly_greater;
}

EventSetTable::EventSetTable() {
  sets_.push_back({});
  index_[hash_events(sets_[0])].push_back(0);
}

EventSetId EventSetTable::find_existing(
    std::uint64_t h, const std::vector<Event>& events) const {
  const auto it = index_.find(h);
  if (it == index_.end()) return kNoEventSet;
  for (EventSetId id : it->second)
    if (sets_[id] == events) return id;
  return kNoEventSet;
}

EventSetId EventSetTable::intern(std::vector<Event> events) {
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  const std::uint64_t h = hash_events(events);
  // Event sets are interned during translation, not exploration; a single
  // mutex in shared mode is plenty.
  std::unique_lock<std::mutex> lk;
  if (shared_) lk = std::unique_lock(mu_);
  if (const EventSetId hit = find_existing(h, events); hit != kNoEventSet)
    return hit;
  const EventSetId id = static_cast<EventSetId>(sets_.push_back(std::move(events)));
  index_[h].push_back(id);
  return id;
}

bool EventSetTable::contains(EventSetId id, Event e) const {
  const auto& s = sets_[id];
  return std::binary_search(s.begin(), s.end(), e);
}

}  // namespace aadlsched::acsr
