// Operational semantics of ground ACSR terms.
//
// transitions() implements the unprioritized relation:
//   Act:      A:P            --A-->    P
//   Evt:      (e!,p).P       --e!,p--> P             (likewise e?)
//   Choice:   union of the summands' transitions
//   Parallel: events interleave (Par1/Par2); matching send/receive pairs
//             synchronize into tau with the sum of the priorities (Par4);
//             timed actions of *all* components combine into one global
//             action when their resource sets are pairwise disjoint (Par3 —
//             time is global, nobody is left behind)
//   Restrict: blocks restricted events from crossing, forcing partners to
//             synchronize inside; taus and timed actions pass
//   Scope:    timed steps of the body decrement the remaining time (hitting
//             0 yields the timeout handler); body events pass without
//             consuming time; the exception label exits to the exception
//             continuation; an interrupt handler's initial transitions stay
//             enabled throughout (§3)
//   Call:     transitions of the memoized unfolding of the definition
//
// prioritized() applies the preemption relation of preemption.hpp on top —
// that is the relation the explorer walks, and the one for which
// "deadlock <=> missed deadline" holds for translated AADL models (§5).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "acsr/context.hpp"
#include "acsr/label.hpp"

namespace aadlsched::acsr {

class Semantics {
 public:
  struct Stats {
    std::uint64_t computed = 0;   // states whose fan was computed
    std::uint64_t memo_hits = 0;  // fan served from the memo table
  };

  /// memoize=false exists only for the ablation bench; exploration with it
  /// is identical but recomputes every fan.
  explicit Semantics(Context& ctx, bool memoize = true)
      : ctx_(ctx), memoize_(memoize) {}

  /// Unprioritized transition fan (copy; safe across further calls).
  std::vector<Transition> transitions(TermId t);

  /// Prioritized fan: unprioritized minus preempted transitions.
  std::vector<Transition> prioritized(TermId t);

  const Stats& stats() const { return stats_; }
  Context& context() { return ctx_; }

 private:
  std::vector<Transition> compute(TermId t);
  void parallel_transitions(TermId t, std::vector<Transition>& out);

  Context& ctx_;
  bool memoize_;
  Stats stats_;
  std::unordered_map<TermId, std::vector<Transition>> memo_;
};

}  // namespace aadlsched::acsr
