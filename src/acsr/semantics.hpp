// Operational semantics of ground ACSR terms.
//
// transitions() implements the unprioritized relation:
//   Act:      A:P            --A-->    P
//   Evt:      (e!,p).P       --e!,p--> P             (likewise e?)
//   Choice:   union of the summands' transitions
//   Parallel: events interleave (Par1/Par2); matching send/receive pairs
//             synchronize into tau with the sum of the priorities (Par4);
//             timed actions of *all* components combine into one global
//             action when their resource sets are pairwise disjoint (Par3 —
//             time is global, nobody is left behind)
//   Restrict: blocks restricted events from crossing, forcing partners to
//             synchronize inside; taus and timed actions pass
//   Scope:    timed steps of the body decrement the remaining time (hitting
//             0 yields the timeout handler); body events pass without
//             consuming time; the exception label exits to the exception
//             continuation; an interrupt handler's initial transitions stay
//             enabled throughout (§3)
//   Call:     transitions of the memoized unfolding of the definition
//
// prioritized() applies the preemption relation of preemption.hpp on top —
// that is the relation the explorer walks, and the one for which
// "deadlock <=> missed deadline" holds for translated AADL models (§5).
#pragma once

#include <cstdint>
#include <vector>

#include "acsr/context.hpp"
#include "acsr/label.hpp"
#include "util/flat_set.hpp"

namespace aadlsched::acsr {

class Semantics {
 public:
  struct Stats {
    std::uint64_t computed = 0;   // states whose fan was computed
    std::uint64_t memo_hits = 0;  // fan served from the memo table
  };

  /// memoize=false exists only for the ablation bench; exploration with it
  /// is identical but recomputes every fan.
  explicit Semantics(Context& ctx, bool memoize = true)
      : ctx_(ctx), memoize_(memoize) {}

  /// Unprioritized transition fan (copy; safe across further calls).
  std::vector<Transition> transitions(TermId t);

  /// Prioritized fan: unprioritized minus preempted transitions.
  std::vector<Transition> prioritized(TermId t);

  const Stats& stats() const { return stats_; }
  Context& context() { return ctx_; }

  /// Approximate footprint of the fan memo (arena + index). The memory
  /// budget estimate adds this on top of Context::approx_bytes(); before it
  /// did, memo-heavy runs under-counted by the whole fan table.
  std::size_t approx_bytes() const {
    return fan_arena_.capacity() * sizeof(Transition) + memo_.approx_bytes();
  }

 private:
  std::vector<Transition> compute(TermId t);
  void parallel_transitions(TermId t, std::vector<Transition>& out);

  // Memoized fans live flat in one arena; the per-term index holds an
  // (offset, len) window into it. Compared to the former
  // unordered_map<TermId, vector<Transition>> this drops two heap nodes
  // per memoized state and keeps fans contiguous.
  struct FanRef {
    std::uint32_t offset = 0;
    std::uint32_t len = 0;
  };

  Context& ctx_;
  bool memoize_;
  Stats stats_;
  std::vector<Transition> fan_arena_;
  util::FlatIdMap<FanRef> memo_;
};

}  // namespace aadlsched::acsr
