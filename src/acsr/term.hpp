// Ground ACSR process terms, hash-consed.
//
// A *ground* term has no free parameters: every priority, guard and timeout
// has been evaluated. States of the exploration are ground terms, so state
// identity is TermId equality. Constructors normalize:
//   * Choice is flattened, sorted, deduplicated, and drops NIL summands
//     (P + NIL ~ P, P + P ~ P);
//   * Parallel is flattened and sorted (associativity/commutativity) but
//     keeps duplicates (P || P is not P);
//   * a Scope whose timeout reached 0 collapses to its timeout handler;
// which canonicalizes semantically-equal states and measurably shrinks the
// explored space (see bench_statespace).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "acsr/ids.hpp"
#include "util/chunked_vector.hpp"

namespace aadlsched::acsr {

enum class TermKind : std::uint8_t {
  Nil,       // deadlocked process, no transitions
  Act,       // A : P        (timed action prefix)
  Evt,       // (e!,p).P or (e?,p).P
  Choice,    // P1 + ... + Pn        (n >= 2)
  Parallel,  // P1 || ... || Pn      (n >= 2)
  Restrict,  // P \ F
  Scope,     // P Δt_a (Q, R, S)     (temporal scope, §3)
  Call,      // D[v1, ..., vk]       (instantiated definition call)
};

struct TermNode {
  TermKind kind = TermKind::Nil;
  std::uint8_t flag = 0;   // Evt: 1 = send, 0 = receive
  std::uint32_t a = 0;     // Act: ActionId | Evt: Event | Restrict: EventSetId
                           // Scope: body | Call: DefId
  std::uint32_t b = 0;     // Act/Evt: continuation | Restrict: body
                           // Scope: time left (cast; kInfiniteTime = -1)
  std::uint32_t c = 0;     // Evt: priority | Scope: exception label (0=none)
  std::uint32_t extra = 0;      // offset into the extra arena
  std::uint32_t extra_len = 0;  // number of u32 payload words

  friend bool operator==(const TermNode&, const TermNode&) = default;
};

/// Scope extra payload layout (extra_len == 3):
///   [0] exception continuation (kInvalidTerm if no exception exit)
///   [1] interrupt handler      (kInvalidTerm if none)
///   [2] timeout handler        (kInvalidTerm means time out to NIL)
struct ScopeParts {
  TermId body = kNil;
  TimeValue time_left = kInfiniteTime;
  Event exception_label = 0;  // 0 = no exception exit
  TermId exception_cont = kInvalidTerm;
  TermId interrupt_handler = kInvalidTerm;
  TermId timeout_handler = kInvalidTerm;
};

class TermTable {
 public:
  TermTable();

  TermId nil() const { return kNil; }
  TermId act(ActionId action, TermId cont);
  TermId evt(Event e, bool send, Priority priority, TermId cont);
  TermId choice(std::vector<TermId> alts);
  TermId parallel(std::vector<TermId> procs);
  TermId restrict(EventSetId events, TermId body);
  TermId scope(const ScopeParts& parts);
  TermId call(DefId def, std::span<const ParamValue> args);

  const TermNode& node(TermId id) const { return nodes_[id]; }
  TermKind kind(TermId id) const { return nodes_[id].kind; }

  /// Children / argument payload of a node. Storage is chunked and append-
  /// only, so the returned span stays valid across further construction.
  std::span<const std::uint32_t> payload(TermId id) const;

  ScopeParts scope_parts(TermId id) const;

  std::size_t size() const { return nodes_.size(); }

  /// Approximate footprint (nodes + payload arena + hash index overhead),
  /// for the resource-governance memory estimate (util/budget.hpp).
  std::size_t approx_bytes() const {
    return nodes_.size() * (sizeof(TermNode) + 48) +
           arena_.size() * sizeof(std::uint32_t);
  }

  /// In shared mode every intern takes its index-shard lock (and a global
  /// append lock on a miss) so workers of the parallel explorer can extend
  /// the term DAG concurrently. Outside shared mode construction is
  /// lock-free single-threaded, as before. Toggle only while quiescent.
  void set_shared_mode(bool shared) { shared_ = shared; }

 private:
  static constexpr std::size_t kIndexShards = 64;
  struct IndexShard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<TermId>> buckets;
  };

  TermId intern(TermNode proto, std::span<const std::uint32_t> payload);
  TermId find_in_bucket(const IndexShard& shard, std::uint64_t h,
                        const TermNode& proto,
                        std::span<const std::uint32_t> payload) const;

  // Chunked so element addresses are stable: readers chase TermIds while
  // writers append (see chunked_vector.hpp for the synchronization
  // contract).
  util::ChunkedVector<TermNode, 13> nodes_;
  util::ChunkedVector<std::uint32_t, 14> arena_;
  std::array<IndexShard, kIndexShards> shards_;
  std::mutex append_mu_;
  bool shared_ = false;
};

}  // namespace aadlsched::acsr
