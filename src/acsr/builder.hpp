// Fluent construction helpers for ACSR definitions.
//
// Thin sugar over Context so that translator code and tests read close to
// the paper's notation:
//
//   Builder b(ctx);
//   auto compute = b.def("Compute", {"e", "t"},
//     b.pick({
//       b.when(b.lt(b.p(0), b.c(cmax)),
//              b.act({{"cpu", b.c(3)}},
//                    b.call("Compute", {b.add(b.p(0), b.c(1)),
//                                       b.add(b.p(1), b.c(1))}))),
//       ...}));
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "acsr/context.hpp"

namespace aadlsched::acsr {

class Builder {
 public:
  explicit Builder(Context& ctx) : ctx_(ctx) {}

  Context& context() { return ctx_; }

  // --- expressions ----------------------------------------------------
  ExprId c(std::int32_t v) { return ctx_.exprs().constant(v); }
  ExprId p(std::int32_t index) { return ctx_.exprs().param(index); }
  ExprId add(ExprId a, ExprId b) {
    return ctx_.exprs().binary(ExprKind::Add, a, b);
  }
  ExprId sub(ExprId a, ExprId b) {
    return ctx_.exprs().binary(ExprKind::Sub, a, b);
  }
  ExprId mul(ExprId a, ExprId b) {
    return ctx_.exprs().binary(ExprKind::Mul, a, b);
  }
  ExprId min(ExprId a, ExprId b) {
    return ctx_.exprs().binary(ExprKind::Min, a, b);
  }
  ExprId max(ExprId a, ExprId b) {
    return ctx_.exprs().binary(ExprKind::Max, a, b);
  }

  // --- guards -----------------------------------------------------------
  CondId lt(ExprId a, ExprId b) {
    return ctx_.exprs().compare(CondKind::Lt, a, b);
  }
  CondId le(ExprId a, ExprId b) {
    return ctx_.exprs().compare(CondKind::Le, a, b);
  }
  CondId gt(ExprId a, ExprId b) {
    return ctx_.exprs().compare(CondKind::Gt, a, b);
  }
  CondId ge(ExprId a, ExprId b) {
    return ctx_.exprs().compare(CondKind::Ge, a, b);
  }
  CondId eq(ExprId a, ExprId b) {
    return ctx_.exprs().compare(CondKind::Eq, a, b);
  }
  CondId ne(ExprId a, ExprId b) {
    return ctx_.exprs().compare(CondKind::Ne, a, b);
  }
  CondId both(CondId a, CondId b) {
    return ctx_.exprs().logic(CondKind::And, a, b);
  }
  CondId either(CondId a, CondId b) {
    return ctx_.exprs().logic(CondKind::Or, a, b);
  }

  // --- open terms -------------------------------------------------------
  OpenTermId nil() { return ctx_.o_nil(); }

  /// Timed action using named resources with priority expressions.
  OpenTermId act(
      std::vector<std::pair<std::string, ExprId>> uses, OpenTermId cont) {
    std::vector<OpenResourceUse> rs;
    rs.reserve(uses.size());
    for (auto& [name, prio] : uses)
      rs.push_back(OpenResourceUse{ctx_.resource(name), prio});
    return ctx_.o_act(std::move(rs), cont);
  }

  /// Pre-resolved variant.
  OpenTermId act_res(std::vector<OpenResourceUse> uses, OpenTermId cont) {
    return ctx_.o_act(std::move(uses), cont);
  }

  /// Idling step: the empty timed action.
  OpenTermId idle(OpenTermId cont) { return ctx_.o_act({}, cont); }

  OpenTermId send(std::string_view ev, ExprId priority, OpenTermId cont) {
    return ctx_.o_evt(ctx_.event(ev), /*send=*/true, priority, cont);
  }
  OpenTermId recv(std::string_view ev, ExprId priority, OpenTermId cont) {
    return ctx_.o_evt(ctx_.event(ev), /*send=*/false, priority, cont);
  }

  OpenTermId pick(std::vector<OpenTermId> alts) {
    return ctx_.o_choice(std::move(alts));
  }
  OpenTermId par(std::vector<OpenTermId> procs) {
    return ctx_.o_parallel(std::move(procs));
  }
  OpenTermId when(CondId guard, OpenTermId body) {
    return ctx_.o_cond(guard, body);
  }

  OpenTermId hide(std::vector<std::string> events, OpenTermId body) {
    std::vector<Event> es;
    es.reserve(events.size());
    for (const std::string& e : events) es.push_back(ctx_.event(e));
    return ctx_.o_restrict(std::move(es), body);
  }

  /// Temporal scope; pass kInvalidOpenTerm for handlers that do not exist.
  OpenTermId scope(OpenTermId body, ExprId timeout,
                   std::string_view exception_label = {},
                   OpenTermId exception_cont = kInvalidOpenTerm,
                   OpenTermId interrupt_handler = kInvalidOpenTerm,
                   OpenTermId timeout_handler = kInvalidOpenTerm) {
    const Event exc =
        exception_label.empty() ? Event{0} : ctx_.event(exception_label);
    return ctx_.o_scope(body, timeout, exc, exception_cont,
                        interrupt_handler, timeout_handler);
  }

  /// Call by definition name; declares the name if not yet defined, so
  /// mutually recursive definitions can be built in any order.
  OpenTermId call(std::string_view def_name, std::vector<ExprId> args = {}) {
    return ctx_.o_call(ctx_.declare(def_name), std::move(args));
  }

  // --- definitions -------------------------------------------------------
  DefId def(std::string name, std::vector<std::string> params,
            OpenTermId body, DefRole role = DefRole::Generic,
            std::string aadl_path = {}, std::string state_name = {}) {
    Definition d;
    d.name = std::move(name);
    d.params = std::move(params);
    d.body = body;
    d.role = role;
    d.aadl_path = std::move(aadl_path);
    d.state_name = std::move(state_name);
    return ctx_.define(std::move(d));
  }

  /// Ground start state: a call with concrete arguments.
  TermId start(std::string_view def_name,
               std::vector<ParamValue> args = {}) {
    return ctx_.terms().call(ctx_.declare(def_name), args);
  }

 private:
  Context& ctx_;
};

}  // namespace aadlsched::acsr
