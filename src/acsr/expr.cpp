#include "acsr/expr.hpp"

#include <algorithm>
#include <limits>

#include "util/hash.hpp"

namespace aadlsched::acsr {

namespace {

std::uint64_t hash_expr(const ExprNode& n) {
  std::uint64_t h = util::mix64(static_cast<std::uint64_t>(n.kind));
  h = util::hash_combine(h, static_cast<std::uint32_t>(n.value));
  h = util::hash_combine(h, n.lhs);
  return util::hash_combine(h, n.rhs);
}

std::uint64_t hash_cond(const CondNode& n) {
  std::uint64_t h = util::mix64(0x517cc1b727220a95ULL +
                                static_cast<std::uint64_t>(n.kind));
  h = util::hash_combine(h, n.lhs);
  return util::hash_combine(h, n.rhs);
}

std::int64_t clamp32(std::int64_t v) {
  return std::clamp<std::int64_t>(v,
                                  std::numeric_limits<std::int32_t>::min(),
                                  std::numeric_limits<std::int32_t>::max());
}

}  // namespace

ExprTable::ExprTable() {
  // CondId 0 is reserved for the trivially-true guard.
  conds_.push_back(CondNode{CondKind::True, 0, 0});
  cond_index_[hash_cond(conds_[0])].push_back(0);
}

ExprId ExprTable::intern_expr(const ExprNode& n) {
  const std::uint64_t h = hash_expr(n);
  auto& bucket = expr_index_[h];
  for (ExprId id : bucket)
    if (exprs_[id] == n) return id;
  const ExprId id = static_cast<ExprId>(exprs_.size());
  exprs_.push_back(n);
  bucket.push_back(id);
  return id;
}

CondId ExprTable::intern_cond(const CondNode& n) {
  const std::uint64_t h = hash_cond(n);
  auto& bucket = cond_index_[h];
  for (CondId id : bucket)
    if (conds_[id] == n) return id;
  const CondId id = static_cast<CondId>(conds_.size());
  conds_.push_back(n);
  bucket.push_back(id);
  return id;
}

ExprId ExprTable::constant(std::int32_t v) {
  return intern_expr(ExprNode{ExprKind::Const, v, 0, 0});
}

ExprId ExprTable::param(std::int32_t index) {
  return intern_expr(ExprNode{ExprKind::Param, index, 0, 0});
}

ExprId ExprTable::binary(ExprKind kind, ExprId lhs, ExprId rhs) {
  // Constant-fold eagerly; bodies built by the translator are full of
  // (param + const) shapes that never fold, but the tests build plenty of
  // constant arithmetic.
  const ExprNode& l = exprs_[lhs];
  const ExprNode& r = exprs_[rhs];
  if (l.kind == ExprKind::Const && r.kind == ExprKind::Const) {
    ExprNode folded{ExprKind::Const, 0, 0, 0};
    const std::int64_t a = l.value, b = r.value;
    std::int64_t v = 0;
    switch (kind) {
      case ExprKind::Add: v = a + b; break;
      case ExprKind::Sub: v = a - b; break;
      case ExprKind::Mul: v = a * b; break;
      case ExprKind::Div: v = b == 0 ? 0 : a / b; break;
      case ExprKind::Min: v = std::min(a, b); break;
      case ExprKind::Max: v = std::max(a, b); break;
      default: v = 0; break;
    }
    folded.value = static_cast<std::int32_t>(clamp32(v));
    return intern_expr(folded);
  }
  return intern_expr(ExprNode{kind, 0, lhs, rhs});
}

CondId ExprTable::compare(CondKind kind, ExprId lhs, ExprId rhs) {
  return intern_cond(CondNode{kind, lhs, rhs});
}

CondId ExprTable::logic(CondKind kind, CondId lhs, CondId rhs) {
  return intern_cond(CondNode{kind, lhs, rhs});
}

std::int64_t ExprTable::eval(ExprId id,
                             std::span<const ParamValue> params) const {
  const ExprNode& n = exprs_[id];
  switch (n.kind) {
    case ExprKind::Const:
      return n.value;
    case ExprKind::Param:
      return n.value >= 0 &&
                     static_cast<std::size_t>(n.value) < params.size()
                 ? params[static_cast<std::size_t>(n.value)]
                 : 0;
    default:
      break;
  }
  const std::int64_t a = eval(n.lhs, params);
  const std::int64_t b = eval(n.rhs, params);
  switch (n.kind) {
    case ExprKind::Add: return clamp32(a + b);
    case ExprKind::Sub: return clamp32(a - b);
    case ExprKind::Mul: return clamp32(a * b);
    case ExprKind::Div: return b == 0 ? 0 : clamp32(a / b);
    case ExprKind::Min: return std::min(a, b);
    case ExprKind::Max: return std::max(a, b);
    default: return 0;
  }
}

bool ExprTable::eval_cond(CondId id,
                          std::span<const ParamValue> params) const {
  const CondNode& n = conds_[id];
  switch (n.kind) {
    case CondKind::True:
      return true;
    case CondKind::And:
      return eval_cond(n.lhs, params) && eval_cond(n.rhs, params);
    case CondKind::Or:
      return eval_cond(n.lhs, params) || eval_cond(n.rhs, params);
    case CondKind::Not:
      return !eval_cond(n.lhs, params);
    default:
      break;
  }
  const std::int64_t a = eval(n.lhs, params);
  const std::int64_t b = eval(n.rhs, params);
  switch (n.kind) {
    case CondKind::Lt: return a < b;
    case CondKind::Le: return a <= b;
    case CondKind::Gt: return a > b;
    case CondKind::Ge: return a >= b;
    case CondKind::Eq: return a == b;
    case CondKind::Ne: return a != b;
    default: return true;
  }
}

namespace {
std::string param_name(std::span<const std::string> names, std::int32_t i) {
  if (i >= 0 && static_cast<std::size_t>(i) < names.size() &&
      !names[static_cast<std::size_t>(i)].empty())
    return names[static_cast<std::size_t>(i)];
  return "p" + std::to_string(i);
}
}  // namespace

std::string ExprTable::render(ExprId id,
                              std::span<const std::string> names) const {
  const ExprNode& n = exprs_[id];
  switch (n.kind) {
    case ExprKind::Const:
      return std::to_string(n.value);
    case ExprKind::Param:
      return param_name(names, n.value);
    case ExprKind::Min:
      return "min(" + render(n.lhs, names) + ", " + render(n.rhs, names) +
             ")";
    case ExprKind::Max:
      return "max(" + render(n.lhs, names) + ", " + render(n.rhs, names) +
             ")";
    default:
      break;
  }
  const char* op = "?";
  switch (n.kind) {
    case ExprKind::Add: op = " + "; break;
    case ExprKind::Sub: op = " - "; break;
    case ExprKind::Mul: op = " * "; break;
    case ExprKind::Div: op = " / "; break;
    default: break;
  }
  return "(" + render(n.lhs, names) + op + render(n.rhs, names) + ")";
}

std::string ExprTable::render_cond(CondId id,
                                   std::span<const std::string> names) const {
  const CondNode& n = conds_[id];
  switch (n.kind) {
    case CondKind::True:
      return "true";
    case CondKind::And:
      return "(" + render_cond(n.lhs, names) + " && " +
             render_cond(n.rhs, names) + ")";
    case CondKind::Or:
      return "(" + render_cond(n.lhs, names) + " || " +
             render_cond(n.rhs, names) + ")";
    case CondKind::Not:
      return "!(" + render_cond(n.lhs, names) + ")";
    default:
      break;
  }
  const char* op = "?";
  switch (n.kind) {
    case CondKind::Lt: op = " < "; break;
    case CondKind::Le: op = " <= "; break;
    case CondKind::Gt: op = " > "; break;
    case CondKind::Ge: op = " >= "; break;
    case CondKind::Eq: op = " == "; break;
    case CondKind::Ne: op = " != "; break;
    default: break;
  }
  return render(n.lhs, names) + op + render(n.rhs, names);
}

}  // namespace aadlsched::acsr
