#include "acsr/context.hpp"

#include <cassert>
#include <stdexcept>

namespace aadlsched::acsr {

OpenTermId Context::push_open(OpenTermNode n) {
  const OpenTermId id = static_cast<OpenTermId>(open_terms_.size());
  open_terms_.push_back(std::move(n));
  return id;
}

OpenTermId Context::o_nil() {
  OpenTermNode n;
  n.kind = OpenKind::Nil;
  return push_open(std::move(n));
}

OpenTermId Context::o_act(std::vector<OpenResourceUse> action,
                          OpenTermId cont) {
  OpenTermNode n;
  n.kind = OpenKind::Act;
  n.action = std::move(action);
  n.cont = cont;
  return push_open(std::move(n));
}

OpenTermId Context::o_evt(Event e, bool send, ExprId priority,
                          OpenTermId cont) {
  OpenTermNode n;
  n.kind = OpenKind::Evt;
  n.event = e;
  n.send = send;
  n.priority = priority;
  n.cont = cont;
  return push_open(std::move(n));
}

OpenTermId Context::o_choice(std::vector<OpenTermId> children) {
  OpenTermNode n;
  n.kind = OpenKind::Choice;
  n.children = std::move(children);
  return push_open(std::move(n));
}

OpenTermId Context::o_parallel(std::vector<OpenTermId> children) {
  OpenTermNode n;
  n.kind = OpenKind::Parallel;
  n.children = std::move(children);
  return push_open(std::move(n));
}

OpenTermId Context::o_restrict(std::vector<Event> events, OpenTermId body) {
  OpenTermNode n;
  n.kind = OpenKind::Restrict;
  n.restricted = std::move(events);
  n.cont = body;
  return push_open(std::move(n));
}

OpenTermId Context::o_scope(OpenTermId body, ExprId timeout,
                            Event exception_label, OpenTermId exception_cont,
                            OpenTermId interrupt_handler,
                            OpenTermId timeout_handler) {
  OpenTermNode n;
  n.kind = OpenKind::Scope;
  n.cont = body;
  n.timeout = timeout;
  n.exception_label = exception_label;
  n.exception_cont = exception_cont;
  n.interrupt_handler = interrupt_handler;
  n.timeout_handler = timeout_handler;
  return push_open(std::move(n));
}

OpenTermId Context::o_call(DefId def, std::vector<ExprId> args) {
  OpenTermNode n;
  n.kind = OpenKind::Call;
  n.def = def;
  n.args = std::move(args);
  return push_open(std::move(n));
}

OpenTermId Context::o_cond(CondId guard, OpenTermId body) {
  OpenTermNode n;
  n.kind = OpenKind::Cond;
  n.guard = guard;
  n.cont = body;
  return push_open(std::move(n));
}

DefId Context::declare(std::string_view name) {
  if (auto it = def_index_.find(std::string(name)); it != def_index_.end())
    return it->second;
  const DefId id = static_cast<DefId>(defs_.size());
  Definition d;
  d.name = std::string(name);
  defs_.push_back(std::move(d));
  def_index_.emplace(std::string(name), id);
  return id;
}

void Context::define(DefId id, Definition def) {
  assert(id < defs_.size());
  if (def.name.empty()) def.name = defs_[id].name;
  if (def.name != defs_[id].name)
    throw std::logic_error("definition name mismatch for '" + def.name + "'");
  defs_[id] = std::move(def);
}

DefId Context::define(Definition def) {
  const DefId id = declare(def.name);
  define(id, std::move(def));
  return id;
}

std::optional<DefId> Context::find_definition(std::string_view name) const {
  auto it = def_index_.find(std::string(name));
  if (it == def_index_.end()) return std::nullopt;
  return it->second;
}

TermId Context::instantiate(OpenTermId open_id,
                            std::span<const ParamValue> params) {
  // Copy the node: instantiation below constructs new open terms never, but
  // recursing while holding a deque reference is safe anyway; the copy keeps
  // the invariant obvious.
  const OpenTermNode n = open_terms_[open_id];
  switch (n.kind) {
    case OpenKind::Nil:
      return kNil;
    case OpenKind::Act: {
      std::vector<ResourceUse> uses;
      uses.reserve(n.action.size());
      for (const OpenResourceUse& u : n.action) {
        const std::int64_t p = exprs_.eval(u.priority, params);
        uses.push_back(ResourceUse{
            u.resource,
            static_cast<Priority>(p < 0 ? 0 : p)});
      }
      const TermId cont = instantiate(n.cont, params);
      return terms_.act(actions_.intern(std::move(uses)), cont);
    }
    case OpenKind::Evt: {
      const std::int64_t p = exprs_.eval(n.priority, params);
      const TermId cont = instantiate(n.cont, params);
      return terms_.evt(n.event, n.send,
                        static_cast<Priority>(p < 0 ? 0 : p), cont);
    }
    case OpenKind::Choice: {
      std::vector<TermId> alts;
      alts.reserve(n.children.size());
      for (OpenTermId c : n.children) alts.push_back(instantiate(c, params));
      return terms_.choice(std::move(alts));
    }
    case OpenKind::Parallel: {
      std::vector<TermId> procs;
      procs.reserve(n.children.size());
      for (OpenTermId c : n.children) procs.push_back(instantiate(c, params));
      return terms_.parallel(std::move(procs));
    }
    case OpenKind::Restrict: {
      const TermId body = instantiate(n.cont, params);
      return terms_.restrict(event_sets_.intern(n.restricted), body);
    }
    case OpenKind::Scope: {
      ScopeParts parts;
      const std::int64_t t = exprs_.eval(n.timeout, params);
      parts.time_left =
          t < 0 ? kInfiniteTime : static_cast<TimeValue>(t);
      parts.body = instantiate(n.cont, params);
      parts.exception_label = n.exception_label;
      parts.exception_cont = n.exception_cont == kInvalidOpenTerm
                                 ? kInvalidTerm
                                 : instantiate(n.exception_cont, params);
      parts.interrupt_handler = n.interrupt_handler == kInvalidOpenTerm
                                    ? kInvalidTerm
                                    : instantiate(n.interrupt_handler, params);
      parts.timeout_handler = n.timeout_handler == kInvalidOpenTerm
                                  ? kInvalidTerm
                                  : instantiate(n.timeout_handler, params);
      return terms_.scope(parts);
    }
    case OpenKind::Call: {
      std::vector<ParamValue> args;
      args.reserve(n.args.size());
      for (ExprId a : n.args) {
        const std::int64_t v = exprs_.eval(a, params);
        args.push_back(static_cast<ParamValue>(v));
      }
      return terms_.call(n.def, args);
    }
    case OpenKind::Cond:
      return exprs_.eval_cond(n.guard, params) ? instantiate(n.cont, params)
                                               : kNil;
  }
  return kNil;
}

TermId Context::unfold(TermId call_term) {
  UnfoldShard& shard =
      unfold_shards_[(call_term * 0x9e3779b9u) >> 28 & (kUnfoldShards - 1)];
  if (shared_) {
    std::lock_guard lk(shard.mu);
    if (auto it = shard.memo.find(call_term); it != shard.memo.end())
      return it->second;
  } else if (auto it = shard.memo.find(call_term); it != shard.memo.end()) {
    return it->second;
  }
  const TermNode& node = terms_.node(call_term);
  assert(node.kind == TermKind::Call);
  const DefId def_id = node.a;
  const Definition& def = defs_[def_id];
  if (def.body == kInvalidOpenTerm)
    throw std::logic_error("call to undefined process '" + def.name + "'");
  const auto raw = terms_.payload(call_term);
  std::vector<ParamValue> params(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i)
    params[i] = static_cast<ParamValue>(raw[i]);
  const OpenTermId body = def.body;
  // Instantiation happens outside the shard lock: interning makes it
  // idempotent, so two workers racing on the same call reach the same
  // TermId and the second emplace is a no-op.
  const TermId ground = instantiate(body, params);
  if (shared_) {
    std::lock_guard lk(shard.mu);
    shard.memo.emplace(call_term, ground);
  } else {
    shard.memo.emplace(call_term, ground);
  }
  return ground;
}

std::size_t Context::approx_bytes() const {
  // Rough per-entry constants stand in for hash-index and allocator
  // overhead; the term table (nodes + payload arena) dominates on any
  // non-trivial exploration, so precision elsewhere does not matter.
  std::size_t bytes = terms_.approx_bytes() + actions_.approx_bytes();
  bytes += exprs_.expr_count() * (sizeof(ExprNode) + 48);
  bytes += (resources_.size() + events_.size()) * 64;
  bytes += open_terms_.size() * sizeof(OpenTermNode);
  bytes += defs_.size() * sizeof(Definition);
  // Unfold memo: one map entry per distinct Call state seen.
  for (std::size_t s = 0; s < kUnfoldShards; ++s)
    bytes += unfold_shards_[s].memo.size() * 48;
  return bytes;
}

void Context::set_shared_mode(bool shared) {
  shared_ = shared;
  resources_.set_shared_mode(shared);
  events_.set_shared_mode(shared);
  actions_.set_shared_mode(shared);
  event_sets_.set_shared_mode(shared);
  terms_.set_shared_mode(shared);
}

}  // namespace aadlsched::acsr
