// The preemption relation and the prioritized transition relation (§3).
//
// The unprioritized relation offers every structurally possible step; the
// prioritized relation removes each transition that is preempted by a
// sibling:
//   * action A1 ≺ action A2 — ActionTable::preempts (resource-wise
//     domination with one strict inequality);
//   * event e ≺ event e' — same label and direction, strictly higher
//     priority;
//   * tau ≺ tau — strictly higher priority (all taus share the label tau);
//   * action ≺ tau whenever the tau has non-zero priority — this is what
//     forces dispatches, queue hand-offs and completions to happen at the
//     quantum boundary where they become possible.
#pragma once

#include <vector>

#include "acsr/action.hpp"
#include "acsr/label.hpp"

namespace aadlsched::acsr {

/// True iff `a` is preempted by `b` (a ≺ b).
bool preempted_by(const ActionTable& actions, const Label& a, const Label& b);

/// Remove every transition preempted by a sibling. Stable: survivors keep
/// their relative order.
void prioritize(const ActionTable& actions, std::vector<Transition>& ts);

}  // namespace aadlsched::acsr
