// Ground timed actions and event sets, both interned.
//
// A timed action is the paper's A = {(r1,p1), ..., (rn,pn)}: one scheduling
// quantum of simultaneous access to a set of resources at given priorities
// (§3). The empty action is the idling step. Actions are canonicalized
// (sorted by resource, unique resources) and interned so the preemption
// relation and the Par3 disjointness check run over small sorted arrays
// identified by a u32.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "acsr/ids.hpp"
#include "util/chunked_vector.hpp"

namespace aadlsched::acsr {

struct ResourceUse {
  Resource resource = 0;
  Priority priority = 0;

  friend bool operator==(const ResourceUse&, const ResourceUse&) = default;
  friend auto operator<=>(const ResourceUse&, const ResourceUse&) = default;
};

class ActionTable {
 public:
  ActionTable();

  /// Intern an action. The input is canonicalized: sorted by resource id;
  /// duplicate resources keep the highest priority (a process cannot
  /// meaningfully request the same resource twice in one step).
  ActionId intern(std::vector<ResourceUse> uses);

  const std::vector<ResourceUse>& uses(ActionId id) const {
    return actions_[id];
  }

  bool is_idle(ActionId id) const { return actions_[id].empty(); }

  /// Par3 side condition: resource sets are disjoint.
  bool disjoint(ActionId a, ActionId b) const;

  /// Union of two disjoint actions (sorted merge).
  ActionId merge(ActionId a, ActionId b);

  /// The paper's preemption order on actions: a ≺ b iff every resource of a
  /// occurs in b with >= priority and some resource of b is strictly higher
  /// than in a (absent resources count as priority 0).
  bool preempts(ActionId a, ActionId b) const;  // true iff a ≺ b

  std::size_t size() const { return actions_.size(); }

  /// Approximate footprint (resource-use vectors + index), for the
  /// resource-governance memory estimate.
  std::size_t approx_bytes() const {
    return actions_.size() * (sizeof(std::vector<ResourceUse>) + 64);
  }

  /// See TermTable::set_shared_mode: locked interning for the parallel
  /// explorer (Par3 merges intern new combined actions on the hot path).
  void set_shared_mode(bool shared) { shared_ = shared; }

 private:
  static constexpr std::size_t kIndexShards = 16;
  struct IndexShard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::vector<ActionId>> buckets;
  };

  ActionId find_in_bucket(const IndexShard& shard, std::uint64_t h,
                          const std::vector<ResourceUse>& uses) const;

  util::ChunkedVector<std::vector<ResourceUse>, 8> actions_;
  std::array<IndexShard, kIndexShards> shards_;
  std::mutex append_mu_;
  bool shared_ = false;
};

/// Interned sorted sets of event labels, for the restriction operator.
class EventSetTable {
 public:
  EventSetTable();

  EventSetId intern(std::vector<Event> events);
  const std::vector<Event>& events(EventSetId id) const { return sets_[id]; }
  bool contains(EventSetId id, Event e) const;
  std::size_t size() const { return sets_.size(); }

  void set_shared_mode(bool shared) { shared_ = shared; }

 private:
  EventSetId find_existing(std::uint64_t h,
                           const std::vector<Event>& events) const;

  util::ChunkedVector<std::vector<Event>, 8> sets_;
  std::unordered_map<std::uint64_t, std::vector<EventSetId>> index_;
  mutable std::mutex mu_;
  bool shared_ = false;
};

}  // namespace aadlsched::acsr
