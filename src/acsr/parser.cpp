#include "acsr/parser.hpp"

#include <cctype>
#include <string>
#include <vector>

namespace aadlsched::acsr {

namespace {

enum class Tok : std::uint8_t {
  End,
  Ident,
  Int,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Plus,
  Minus,
  Star,
  Slash,
  Colon,
  Dot,
  Bang,
  Question,
  Assign,     // =
  Arrow,      // ->
  ParBar,     // ||
  AndAnd,     // &&
  Backslash,  // \  (restriction)
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  Ne,
  Not,  // ! used in conditions is Bang as well; disambiguated in context
};

struct Token {
  Tok kind = Tok::End;
  std::string_view text;
  std::int64_t value = 0;
  util::SourceLoc loc;
};

class Lexer {
 public:
  Lexer(std::string_view src, util::DiagnosticEngine& diags)
      : src_(src), diags_(diags) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      Token t = next();
      out.push_back(t);
      if (t.kind == Tok::End) break;
    }
    return out;
  }

 private:
  util::SourceLoc loc() const { return {line_, col_}; }

  char peek(std::size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (pos_ < src_.size()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '#' || (c == '/' && peek(1) == '/')) {
        while (pos_ < src_.size() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  Token next() {
    skip_ws();
    Token t;
    t.loc = loc();
    if (pos_ >= src_.size()) return t;
    const std::size_t start = pos_;
    const char c = advance();
    const auto two = [&](char second, Tok yes, Tok no) {
      if (peek() == second) {
        advance();
        t.kind = yes;
      } else {
        t.kind = no;
      }
    };
    switch (c) {
      case '(': t.kind = Tok::LParen; break;
      case ')': t.kind = Tok::RParen; break;
      case '{': t.kind = Tok::LBrace; break;
      case '}': t.kind = Tok::RBrace; break;
      case '[': t.kind = Tok::LBracket; break;
      case ']': t.kind = Tok::RBracket; break;
      case ',': t.kind = Tok::Comma; break;
      case '+': t.kind = Tok::Plus; break;
      case '*': t.kind = Tok::Star; break;
      case '/': t.kind = Tok::Slash; break;
      case ':': t.kind = Tok::Colon; break;
      case '.': t.kind = Tok::Dot; break;
      case '?': t.kind = Tok::Question; break;
      case '\\': t.kind = Tok::Backslash; break;
      case '-': two('>', Tok::Arrow, Tok::Minus); break;
      case '|': two('|', Tok::ParBar, Tok::ParBar); break;
      case '&': two('&', Tok::AndAnd, Tok::AndAnd); break;
      case '=': two('=', Tok::EqEq, Tok::Assign); break;
      case '<': two('=', Tok::Le, Tok::Lt); break;
      case '>': two('=', Tok::Ge, Tok::Gt); break;
      case '!': two('=', Tok::Ne, Tok::Bang); break;
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          std::int64_t v = c - '0';
          while (std::isdigit(static_cast<unsigned char>(peek())))
            v = v * 10 + (advance() - '0');
          t.kind = Tok::Int;
          t.value = v;
        } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
          while (std::isalnum(static_cast<unsigned char>(peek())) ||
                 peek() == '_')
            advance();
          t.kind = Tok::Ident;
        } else {
          diags_.error(t.loc, std::string("unexpected character '") + c +
                                  "' in ACSR input");
          return next();
        }
        break;
    }
    t.text = src_.substr(start, pos_ - start);
    return t;
  }

  std::string_view src_;
  util::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

class Parser {
 public:
  Parser(Context& ctx, std::vector<Token> tokens,
         util::DiagnosticEngine& diags)
      : ctx_(ctx), toks_(std::move(tokens)), diags_(diags) {}

  bool module() {
    while (!at(Tok::End)) {
      if (!definition()) return false;
    }
    return !diags_.has_errors();
  }

 private:
  // --- token plumbing ----------------------------------------------------
  const Token& cur() const { return toks_[i_]; }
  bool at(Tok k) const { return cur().kind == k; }
  bool at_kw(std::string_view kw) const {
    return at(Tok::Ident) && cur().text == kw;
  }
  Token eat() { return toks_[i_++]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    ++i_;
    return true;
  }
  bool expect(Tok k, std::string_view what) {
    if (accept(k)) return true;
    err(cur().loc, "expected " + std::string(what) + ", found '" +
                                std::string(cur().text) + "'");
    return false;
  }
  std::size_t mark() const { return i_; }
  void rewind(std::size_t m) { i_ = m; }

  /// Diagnostic report that is silenced during speculative parses.
  void err(util::SourceLoc loc, std::string message) {
    if (speculating_ == 0) diags_.error(loc, std::move(message));
  }

  // --- expressions over the current definition's parameters --------------
  std::optional<ExprId> expr() { return expr_add(); }

  std::optional<ExprId> expr_add() {
    auto lhs = expr_mul();
    if (!lhs) return std::nullopt;
    while (at(Tok::Plus) || at(Tok::Minus)) {
      const bool add = eat().kind == Tok::Plus;
      auto rhs = expr_mul();
      if (!rhs) return std::nullopt;
      lhs = ctx_.exprs().binary(add ? ExprKind::Add : ExprKind::Sub, *lhs,
                                *rhs);
    }
    return lhs;
  }

  std::optional<ExprId> expr_mul() {
    auto lhs = expr_atom();
    if (!lhs) return std::nullopt;
    while (at(Tok::Star) || at(Tok::Slash)) {
      const bool mul = eat().kind == Tok::Star;
      auto rhs = expr_atom();
      if (!rhs) return std::nullopt;
      lhs = ctx_.exprs().binary(mul ? ExprKind::Mul : ExprKind::Div, *lhs,
                                *rhs);
    }
    return lhs;
  }

  std::optional<ExprId> expr_atom() {
    if (at(Tok::Int)) {
      return ctx_.exprs().constant(static_cast<std::int32_t>(eat().value));
    }
    if (at(Tok::Minus)) {
      eat();
      auto inner = expr_atom();
      if (!inner) return std::nullopt;
      return ctx_.exprs().binary(ExprKind::Sub, ctx_.exprs().constant(0),
                                 *inner);
    }
    if (at(Tok::LParen)) {
      eat();
      auto inner = expr();
      if (!inner || !expect(Tok::RParen, "')'")) return std::nullopt;
      return inner;
    }
    if (at(Tok::Ident)) {
      const Token t = eat();
      if (t.text == "inf") return ctx_.exprs().constant(-1);
      if ((t.text == "min" || t.text == "max") && at(Tok::LParen)) {
        eat();
        auto a = expr();
        if (!a || !expect(Tok::Comma, "','")) return std::nullopt;
        auto b = expr();
        if (!b || !expect(Tok::RParen, "')'")) return std::nullopt;
        return ctx_.exprs().binary(
            t.text == "min" ? ExprKind::Min : ExprKind::Max, *a, *b);
      }
      // Parameter reference.
      for (std::size_t k = 0; k < params_.size(); ++k) {
        if (params_[k] == t.text)
          return ctx_.exprs().param(static_cast<std::int32_t>(k));
      }
      err(t.loc, "unknown parameter '" + std::string(t.text) + "'");
      return std::nullopt;
    }
    err(cur().loc, "expected expression, found '" +
                                std::string(cur().text) + "'");
    return std::nullopt;
  }

  // --- conditions ----------------------------------------------------------
  std::optional<CondId> cond() {
    auto lhs = cond_atom();
    if (!lhs) return std::nullopt;
    while (at(Tok::AndAnd) || at(Tok::ParBar)) {
      const bool conj = eat().kind == Tok::AndAnd;
      auto rhs = cond_atom();
      if (!rhs) return std::nullopt;
      lhs = ctx_.exprs().logic(conj ? CondKind::And : CondKind::Or, *lhs,
                               *rhs);
    }
    return lhs;
  }

  std::optional<CondId> cond_atom() {
    if (at_kw("true")) {
      eat();
      return kCondTrue;
    }
    if (at(Tok::Bang)) {
      eat();
      auto inner = cond_atom();
      if (!inner) return std::nullopt;
      return ctx_.exprs().logic(CondKind::Not, *inner);
    }
    if (at(Tok::LParen)) {
      const std::size_t m = mark();
      eat();
      if (auto inner = cond(); inner && accept(Tok::RParen)) return inner;
      rewind(m);
    }
    auto lhs = expr();
    if (!lhs) return std::nullopt;
    CondKind k;
    switch (cur().kind) {
      case Tok::Lt: k = CondKind::Lt; break;
      case Tok::Le: k = CondKind::Le; break;
      case Tok::Gt: k = CondKind::Gt; break;
      case Tok::Ge: k = CondKind::Ge; break;
      case Tok::EqEq: k = CondKind::Eq; break;
      case Tok::Ne: k = CondKind::Ne; break;
      default:
        err(cur().loc, "expected comparison operator");
        return std::nullopt;
    }
    eat();
    auto rhs = expr();
    if (!rhs) return std::nullopt;
    return ctx_.exprs().compare(k, *lhs, *rhs);
  }

  // --- terms -----------------------------------------------------------
  std::optional<OpenTermId> term() { return term_par(); }

  std::optional<OpenTermId> term_par() {
    auto lhs = term_sum();
    if (!lhs) return std::nullopt;
    if (!at(Tok::ParBar)) return lhs;
    std::vector<OpenTermId> procs{*lhs};
    while (accept(Tok::ParBar)) {
      auto rhs = term_sum();
      if (!rhs) return std::nullopt;
      procs.push_back(*rhs);
    }
    return ctx_.o_parallel(std::move(procs));
  }

  std::optional<OpenTermId> term_sum() {
    auto lhs = term_prefix();
    if (!lhs) return std::nullopt;
    if (!at(Tok::Plus)) return lhs;
    std::vector<OpenTermId> alts{*lhs};
    while (accept(Tok::Plus)) {
      auto rhs = term_prefix();
      if (!rhs) return std::nullopt;
      alts.push_back(*rhs);
    }
    return ctx_.o_choice(std::move(alts));
  }

  std::optional<OpenTermId> term_prefix() {
    auto base = term_primary();
    if (!base) return std::nullopt;
    while (at(Tok::Backslash)) {
      eat();
      if (!expect(Tok::LBrace, "'{'")) return std::nullopt;
      std::vector<Event> events;
      if (!at(Tok::RBrace)) {
        do {
          if (!at(Tok::Ident)) {
            err(cur().loc, "expected event name");
            return std::nullopt;
          }
          events.push_back(ctx_.event(eat().text));
        } while (accept(Tok::Comma));
      }
      if (!expect(Tok::RBrace, "'}'")) return std::nullopt;
      base = ctx_.o_restrict(std::move(events), *base);
    }
    return base;
  }

  std::optional<OpenTermId> term_primary() {
    if (at_kw("NIL")) {
      eat();
      return ctx_.o_nil();
    }
    if (at_kw("scope")) return term_scope();
    if (at(Tok::LBrace)) return term_action();
    if (at(Tok::LParen)) return term_paren();
    if (at(Tok::Ident)) return term_call();
    err(cur().loc, "expected process term, found '" +
                                std::string(cur().text) + "'");
    return std::nullopt;
  }

  // '{' (res, prio) ... '}' ':' prefix
  std::optional<OpenTermId> term_action() {
    expect(Tok::LBrace, "'{'");
    std::vector<OpenResourceUse> uses;
    if (!at(Tok::RBrace)) {
      do {
        if (!expect(Tok::LParen, "'('")) return std::nullopt;
        if (!at(Tok::Ident)) {
          err(cur().loc, "expected resource name");
          return std::nullopt;
        }
        const Resource r = ctx_.resource(eat().text);
        if (!expect(Tok::Comma, "','")) return std::nullopt;
        auto prio = expr();
        if (!prio || !expect(Tok::RParen, "')'")) return std::nullopt;
        uses.push_back(OpenResourceUse{r, *prio});
      } while (accept(Tok::Comma));
    }
    if (!expect(Tok::RBrace, "'}'")) return std::nullopt;
    if (!expect(Tok::Colon, "':'")) return std::nullopt;
    auto cont = term_prefix();
    if (!cont) return std::nullopt;
    return ctx_.o_act(std::move(uses), *cont);
  }

  // '(': event prefix, guard, or grouping — resolved by backtracking.
  std::optional<OpenTermId> term_paren() {
    const std::size_t m = mark();
    eat();  // '('

    // Attempt 1: event prefix "(name!|?, prio) . cont".
    if (at(Tok::Ident)) {
      const Token name = eat();
      if (at(Tok::Bang) || at(Tok::Question)) {
        const bool send = eat().kind == Tok::Bang;
        if (accept(Tok::Comma)) {
          auto prio = expr();
          if (prio && accept(Tok::RParen) && accept(Tok::Dot)) {
            auto cont = term_prefix();
            if (!cont) return std::nullopt;
            return ctx_.o_evt(ctx_.event(name.text), send, *prio, *cont);
          }
        }
        rewind(m);
        err(name.loc, "malformed event prefix");
        return std::nullopt;
      }
      rewind(m);
    } else {
      rewind(m);
    }

    // Attempt 2: guard "(cond) -> term" — speculative, errors suppressed
    // while speculating so a failed attempt leaves no diagnostics behind.
    {
      const std::size_t m2 = mark();
      eat();  // '('
      ++speculating_;
      auto g = cond();
      const bool ok = g && accept(Tok::RParen) && accept(Tok::Arrow);
      --speculating_;
      if (ok) {
        auto body = term_prefix();
        if (!body) return std::nullopt;
        return ctx_.o_cond(*g, *body);
      }
      rewind(m2);
    }

    // Attempt 3: grouping.
    eat();  // '('
    auto inner = term();
    if (!inner || !expect(Tok::RParen, "')'")) return std::nullopt;
    return inner;
  }

  std::optional<OpenTermId> term_scope() {
    eat();  // 'scope'
    if (!expect(Tok::LParen, "'('")) return std::nullopt;
    auto body = term();
    if (!body || !expect(Tok::Comma, "','")) return std::nullopt;
    auto timeout = expr();
    if (!timeout) return std::nullopt;
    Event exc = 0;
    OpenTermId exc_cont = kInvalidOpenTerm;
    OpenTermId intr = kInvalidOpenTerm;
    OpenTermId tmo = kInvalidOpenTerm;
    while (accept(Tok::Comma)) {
      if (at_kw("exc")) {
        eat();
        if (!at(Tok::Ident)) {
          err(cur().loc, "expected exception event name");
          return std::nullopt;
        }
        exc = ctx_.event(eat().text);
        if (!expect(Tok::Arrow, "'->'")) return std::nullopt;
        auto t = term_prefix();
        if (!t) return std::nullopt;
        exc_cont = *t;
      } else if (at_kw("intr")) {
        eat();
        if (!expect(Tok::Arrow, "'->'")) return std::nullopt;
        auto t = term_prefix();
        if (!t) return std::nullopt;
        intr = *t;
      } else if (at_kw("timeout")) {
        eat();
        if (!expect(Tok::Arrow, "'->'")) return std::nullopt;
        auto t = term_prefix();
        if (!t) return std::nullopt;
        tmo = *t;
      } else {
        err(cur().loc, "expected 'exc', 'intr' or 'timeout'");
        return std::nullopt;
      }
    }
    if (!expect(Tok::RParen, "')'")) return std::nullopt;
    return ctx_.o_scope(*body, *timeout, exc, exc_cont, intr, tmo);
  }

  std::optional<OpenTermId> term_call() {
    const Token name = eat();
    std::vector<ExprId> args;
    if (accept(Tok::LBracket)) {
      do {
        auto a = expr();
        if (!a) return std::nullopt;
        args.push_back(*a);
      } while (accept(Tok::Comma));
      if (!expect(Tok::RBracket, "']'")) return std::nullopt;
    }
    return ctx_.o_call(ctx_.declare(name.text), std::move(args));
  }

  // --- definitions ---------------------------------------------------------
  bool definition() {
    if (!at(Tok::Ident)) {
      err(cur().loc, "expected process name");
      return false;
    }
    const Token name = eat();
    params_.clear();
    if (accept(Tok::LBracket)) {
      do {
        if (!at(Tok::Ident)) {
          err(cur().loc, "expected parameter name");
          return false;
        }
        params_.emplace_back(eat().text);
      } while (accept(Tok::Comma));
      if (!expect(Tok::RBracket, "']'")) return false;
    }
    if (!expect(Tok::Assign, "'='")) return false;
    auto body = term();
    if (!body) return false;
    Definition d;
    d.name = std::string(name.text);
    d.params = params_;
    d.body = *body;
    ctx_.define(ctx_.declare(name.text), std::move(d));
    return true;
  }

  Context& ctx_;
  std::vector<Token> toks_;
  util::DiagnosticEngine& diags_;
  std::size_t i_ = 0;
  std::vector<std::string> params_;
  int speculating_ = 0;
};

// Recursive descent over the printed ground-term grammar. Unlike the module
// parser there is no backtracking: in a ground term a '(' is an event prefix
// exactly when an identifier followed by '!'/'?' comes next (guards have
// been evaluated away), and Choice/Parallel are always parenthesized by the
// printer, so the grammar is LL(2). Everything is built straight in the
// ground tables; kInvalidTerm is the error sentinel (kNil is a valid term).
class GroundParser {
 public:
  GroundParser(Context& ctx, std::vector<Token> tokens,
               util::DiagnosticEngine& diags)
      : ctx_(ctx), toks_(std::move(tokens)), diags_(diags) {}

  TermId run() {
    const TermId t = prefix();
    if (t == kInvalidTerm) return kInvalidTerm;
    if (!at(Tok::End)) {
      diags_.error(cur().loc, "trailing input after ground term");
      return kInvalidTerm;
    }
    return t;
  }

 private:
  const Token& cur() const { return toks_[i_]; }
  const Token& peek2() const { return toks_[i_ + 1]; }
  bool at(Tok k) const { return cur().kind == k; }
  bool at_kw(std::string_view kw) const {
    return at(Tok::Ident) && cur().text == kw;
  }
  Token eat() { return toks_[i_++]; }
  bool accept(Tok k) {
    if (!at(k)) return false;
    ++i_;
    return true;
  }
  bool expect(Tok k, std::string_view what) {
    if (accept(k)) return true;
    diags_.error(cur().loc, "expected " + std::string(what) + ", found '" +
                                std::string(cur().text) + "'");
    return false;
  }

  /// Integer literal with optional leading '-' (call arguments may be
  /// negative; printed priorities never are but the form is harmless).
  std::optional<std::int32_t> integer() {
    const bool neg = accept(Tok::Minus);
    if (!at(Tok::Int)) {
      diags_.error(cur().loc, "expected integer, found '" +
                                  std::string(cur().text) + "'");
      return std::nullopt;
    }
    const std::int64_t v = eat().value;
    return static_cast<std::int32_t>(neg ? -v : v);
  }

  // prefix ::= primary ('\' '{' names '}')*
  TermId prefix() {
    TermId base = primary();
    while (base != kInvalidTerm && at(Tok::Backslash)) {
      eat();
      if (!expect(Tok::LBrace, "'{'")) return kInvalidTerm;
      std::vector<Event> events;
      if (!at(Tok::RBrace)) {
        do {
          if (!at(Tok::Ident)) {
            diags_.error(cur().loc, "expected event name");
            return kInvalidTerm;
          }
          events.push_back(ctx_.event(eat().text));
        } while (accept(Tok::Comma));
      }
      if (!expect(Tok::RBrace, "'}'")) return kInvalidTerm;
      base = ctx_.terms().restrict(ctx_.event_sets().intern(std::move(events)),
                                   base);
    }
    return base;
  }

  TermId primary() {
    if (at_kw("NIL")) {
      eat();
      return ctx_.terms().nil();
    }
    if (at_kw("scope")) return scope();
    if (at(Tok::LBrace)) return action();
    if (at(Tok::LParen)) return paren();
    if (at(Tok::Ident)) return call();
    diags_.error(cur().loc, "expected ground term, found '" +
                                std::string(cur().text) + "'");
    return kInvalidTerm;
  }

  // '{' [ '(' res ',' prio ')' (',' ...)* ] '}' ':' prefix
  TermId action() {
    eat();  // '{'
    std::vector<ResourceUse> uses;
    if (!at(Tok::RBrace)) {
      do {
        if (!expect(Tok::LParen, "'('")) return kInvalidTerm;
        if (!at(Tok::Ident)) {
          diags_.error(cur().loc, "expected resource name");
          return kInvalidTerm;
        }
        const Resource r = ctx_.resource(eat().text);
        if (!expect(Tok::Comma, "','")) return kInvalidTerm;
        const auto prio = integer();
        if (!prio || !expect(Tok::RParen, "')'")) return kInvalidTerm;
        uses.push_back(ResourceUse{r, *prio});
      } while (accept(Tok::Comma));
    }
    if (!expect(Tok::RBrace, "'}'")) return kInvalidTerm;
    if (!expect(Tok::Colon, "':'")) return kInvalidTerm;
    const TermId cont = prefix();
    if (cont == kInvalidTerm) return kInvalidTerm;
    return ctx_.terms().act(ctx_.actions().intern(std::move(uses)), cont);
  }

  // '(' name ('!'|'?') ',' prio ')' '.' prefix   — or grouping.
  TermId paren() {
    eat();  // '('
    if (at(Tok::Ident) &&
        (peek2().kind == Tok::Bang || peek2().kind == Tok::Question)) {
      const Event e = ctx_.event(eat().text);
      const bool send = eat().kind == Tok::Bang;
      if (!expect(Tok::Comma, "','")) return kInvalidTerm;
      const auto prio = integer();
      if (!prio || !expect(Tok::RParen, "')'") || !expect(Tok::Dot, "'.'"))
        return kInvalidTerm;
      const TermId cont = prefix();
      if (cont == kInvalidTerm) return kInvalidTerm;
      return ctx_.terms().evt(e, send, *prio, cont);
    }
    // Grouping: a single term, or a printed Choice/Parallel list.
    TermId first = prefix();
    if (first == kInvalidTerm) return kInvalidTerm;
    if (at(Tok::Plus) || at(Tok::ParBar)) {
      const bool is_choice = at(Tok::Plus);
      std::vector<TermId> children{first};
      while (accept(is_choice ? Tok::Plus : Tok::ParBar)) {
        const TermId next = prefix();
        if (next == kInvalidTerm) return kInvalidTerm;
        children.push_back(next);
      }
      if (!expect(Tok::RParen, "')'")) return kInvalidTerm;
      return is_choice ? ctx_.terms().choice(std::move(children))
                       : ctx_.terms().parallel(std::move(children));
    }
    if (!expect(Tok::RParen, "')'")) return kInvalidTerm;
    return first;
  }

  // 'scope' '(' term ',' time [', exc e -> t'] [', intr -> t'] [', timeout
  // -> t'] ')'
  TermId scope() {
    eat();  // 'scope'
    if (!expect(Tok::LParen, "'('")) return kInvalidTerm;
    ScopeParts parts;
    parts.body = prefix();
    if (parts.body == kInvalidTerm || !expect(Tok::Comma, "','"))
      return kInvalidTerm;
    if (at_kw("inf")) {
      eat();
      parts.time_left = kInfiniteTime;
    } else {
      const auto t = integer();
      if (!t) return kInvalidTerm;
      parts.time_left = *t;
    }
    while (accept(Tok::Comma)) {
      if (at_kw("exc")) {
        eat();
        if (!at(Tok::Ident)) {
          diags_.error(cur().loc, "expected exception event name");
          return kInvalidTerm;
        }
        parts.exception_label = ctx_.event(eat().text);
        if (!expect(Tok::Arrow, "'->'")) return kInvalidTerm;
        parts.exception_cont = prefix();
        if (parts.exception_cont == kInvalidTerm) return kInvalidTerm;
      } else if (at_kw("intr")) {
        eat();
        if (!expect(Tok::Arrow, "'->'")) return kInvalidTerm;
        parts.interrupt_handler = prefix();
        if (parts.interrupt_handler == kInvalidTerm) return kInvalidTerm;
      } else if (at_kw("timeout")) {
        eat();
        if (!expect(Tok::Arrow, "'->'")) return kInvalidTerm;
        parts.timeout_handler = prefix();
        if (parts.timeout_handler == kInvalidTerm) return kInvalidTerm;
      } else {
        diags_.error(cur().loc, "expected 'exc', 'intr' or 'timeout'");
        return kInvalidTerm;
      }
    }
    if (!expect(Tok::RParen, "')'")) return kInvalidTerm;
    return ctx_.terms().scope(parts);
  }

  // name [ '[' int (',' int)* ']' ] — the definition must already exist.
  TermId call() {
    const Token name = eat();
    const auto def = ctx_.find_definition(name.text);
    if (!def) {
      diags_.error(name.loc, "unknown process '" + std::string(name.text) +
                                 "' in ground term");
      return kInvalidTerm;
    }
    std::vector<ParamValue> args;
    if (accept(Tok::LBracket)) {
      do {
        const auto a = integer();
        if (!a) return kInvalidTerm;
        args.push_back(*a);
      } while (accept(Tok::Comma));
      if (!expect(Tok::RBracket, "']'")) return kInvalidTerm;
    }
    if (args.size() != ctx_.definition(*def).params.size()) {
      diags_.error(name.loc,
                   "call of '" + std::string(name.text) + "' with " +
                       std::to_string(args.size()) + " arguments (expected " +
                       std::to_string(ctx_.definition(*def).params.size()) +
                       ")");
      return kInvalidTerm;
    }
    return ctx_.terms().call(*def, args);
  }

  Context& ctx_;
  std::vector<Token> toks_;
  util::DiagnosticEngine& diags_;
  std::size_t i_ = 0;
};

}  // namespace

bool parse_module(Context& ctx, std::string_view source,
                  util::DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(ctx, lexer.run(), diags);
  return parser.module();
}

TermId parse_ground_term(Context& ctx, std::string_view source,
                         util::DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  GroundParser parser(ctx, lexer.run(), diags);
  if (diags.has_errors()) return kInvalidTerm;  // lexing failed
  return parser.run();
}

}  // namespace aadlsched::acsr
