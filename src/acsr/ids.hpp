// Fundamental id types of the ACSR core.
//
// Everything the exploration loop touches is a dense 32-bit id into an
// interning table owned by acsr::Context: terms, actions, expressions,
// process definitions, resource/event names. Structural equality of process
// terms is id equality (hash-consing), which is what makes exhaustive
// state-space exploration tractable.
#pragma once

#include <cstdint>
#include <limits>

#include "util/interner.hpp"

namespace aadlsched::acsr {

/// Ground (fully instantiated) process term. TermId 0 is NIL, the deadlocked
/// process with no transitions.
using TermId = std::uint32_t;
inline constexpr TermId kNil = 0;
inline constexpr TermId kInvalidTerm =
    std::numeric_limits<TermId>::max();

/// Open (parameterized) term inside a process definition body.
using OpenTermId = std::uint32_t;
inline constexpr OpenTermId kInvalidOpenTerm =
    std::numeric_limits<OpenTermId>::max();

/// Arithmetic expression over definition parameters.
using ExprId = std::uint32_t;
/// Boolean guard over definition parameters.
using CondId = std::uint32_t;
inline constexpr CondId kCondTrue = 0;

/// Interned ground action: a sorted set of (resource, priority) pairs.
/// ActionId 0 is the empty (idling) action.
using ActionId = std::uint32_t;
inline constexpr ActionId kIdleAction = 0;

/// Interned sorted set of event labels (used by the restriction operator).
using EventSetId = std::uint32_t;

/// Process definition (name, parameters, body).
using DefId = std::uint32_t;
inline constexpr DefId kInvalidDef =
    std::numeric_limits<DefId>::max();

/// Resource and event names; separate interners in Context, both Symbols.
using Resource = util::Symbol;
using Event = util::Symbol;

/// Evaluated priority of a resource access or event offer. Priorities are
/// non-negative; the preemption relation treats an absent resource as
/// priority 0.
using Priority = std::int32_t;

/// Parameter value of a parameterized process. The AADL translation only
/// produces bounded parameters (elapsed time <= deadline, queue depth <=
/// queue size), which keeps the reachable state space finite.
using ParamValue = std::int32_t;

/// Scope timeout value; kInfiniteTime means the scope never times out.
using TimeValue = std::int32_t;
inline constexpr TimeValue kInfiniteTime = -1;

}  // namespace aadlsched::acsr
