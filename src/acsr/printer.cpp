#include "acsr/printer.hpp"

#include <sstream>

#include "acsr/label.hpp"

namespace aadlsched::acsr {

namespace {

constexpr std::string_view kInfinity = "inf";

}  // namespace

std::string Printer::open_term(OpenTermId id,
                               std::span<const std::string> params) const {
  const OpenTermNode& n = ctx_.open(id);
  const ExprTable& ex = ctx_.exprs();
  std::ostringstream os;
  switch (n.kind) {
    case OpenKind::Nil:
      os << "NIL";
      break;
    case OpenKind::Act: {
      os << '{';
      for (std::size_t i = 0; i < n.action.size(); ++i) {
        if (i != 0) os << ',';
        os << '(' << ctx_.resource_name(n.action[i].resource) << ','
           << ex.render(n.action[i].priority, params) << ')';
      }
      os << "} : " << open_term(n.cont, params);
      break;
    }
    case OpenKind::Evt:
      os << '(' << ctx_.event_name(n.event) << (n.send ? '!' : '?') << ','
         << ex.render(n.priority, params) << ") . "
         << open_term(n.cont, params);
      break;
    case OpenKind::Choice: {
      os << '(';
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (i != 0) os << " + ";
        os << open_term(n.children[i], params);
      }
      os << ')';
      break;
    }
    case OpenKind::Parallel: {
      os << '(';
      for (std::size_t i = 0; i < n.children.size(); ++i) {
        if (i != 0) os << " || ";
        os << open_term(n.children[i], params);
      }
      os << ')';
      break;
    }
    case OpenKind::Restrict: {
      os << '(' << open_term(n.cont, params) << ") \\ {";
      for (std::size_t i = 0; i < n.restricted.size(); ++i) {
        if (i != 0) os << ',';
        os << ctx_.event_name(n.restricted[i]);
      }
      os << '}';
      break;
    }
    case OpenKind::Scope: {
      os << "scope(" << open_term(n.cont, params) << ", "
         << ex.render(n.timeout, params);
      if (n.exception_label != 0)
        os << ", exc " << ctx_.event_name(n.exception_label) << " -> "
           << open_term(n.exception_cont, params);
      if (n.interrupt_handler != kInvalidOpenTerm)
        os << ", intr -> " << open_term(n.interrupt_handler, params);
      if (n.timeout_handler != kInvalidOpenTerm)
        os << ", timeout -> " << open_term(n.timeout_handler, params);
      os << ')';
      break;
    }
    case OpenKind::Call: {
      os << ctx_.definition(n.def).name;
      if (!n.args.empty()) {
        os << '[';
        for (std::size_t i = 0; i < n.args.size(); ++i) {
          if (i != 0) os << ", ";
          os << ex.render(n.args[i], params);
        }
        os << ']';
      }
      break;
    }
    case OpenKind::Cond:
      os << '(' << ex.render_cond(n.guard, params) << ") -> "
         << open_term(n.cont, params);
      break;
  }
  return os.str();
}

std::string Printer::ground_term(TermId id) const {
  const TermTable& tt = ctx_.terms();
  const TermNode& n = tt.node(id);
  std::ostringstream os;
  switch (n.kind) {
    case TermKind::Nil:
      os << "NIL";
      break;
    case TermKind::Act:
      os << render_action(ctx_, n.a) << " : " << ground_term(n.b);
      break;
    case TermKind::Evt:
      os << '(' << ctx_.event_name(n.a) << (n.flag ? '!' : '?') << ','
         << static_cast<Priority>(n.c) << ") . " << ground_term(n.b);
      break;
    case TermKind::Choice: {
      const auto p = tt.payload(id);
      os << '(';
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (i != 0) os << " + ";
        os << ground_term(p[i]);
      }
      os << ')';
      break;
    }
    case TermKind::Parallel: {
      const auto p = tt.payload(id);
      os << '(';
      for (std::size_t i = 0; i < p.size(); ++i) {
        if (i != 0) os << " || ";
        os << ground_term(p[i]);
      }
      os << ')';
      break;
    }
    case TermKind::Restrict: {
      const auto& es = ctx_.event_sets().events(n.a);
      os << '(' << ground_term(n.b) << ") \\ {";
      for (std::size_t i = 0; i < es.size(); ++i) {
        if (i != 0) os << ',';
        os << ctx_.event_name(es[i]);
      }
      os << '}';
      break;
    }
    case TermKind::Scope: {
      const ScopeParts parts = tt.scope_parts(id);
      os << "scope(" << ground_term(parts.body) << ", ";
      if (parts.time_left == kInfiniteTime)
        os << kInfinity;
      else
        os << parts.time_left;
      if (parts.exception_label != 0)
        os << ", exc " << ctx_.event_name(parts.exception_label) << " -> "
           << (parts.exception_cont == kInvalidTerm
                   ? "NIL"
                   : ground_term(parts.exception_cont));
      if (parts.interrupt_handler != kInvalidTerm)
        os << ", intr -> " << ground_term(parts.interrupt_handler);
      if (parts.timeout_handler != kInvalidTerm)
        os << ", timeout -> " << ground_term(parts.timeout_handler);
      os << ')';
      break;
    }
    case TermKind::Call: {
      os << ctx_.definition(n.a).name;
      const auto p = tt.payload(id);
      if (!p.empty()) {
        os << '[';
        for (std::size_t i = 0; i < p.size(); ++i) {
          if (i != 0) os << ", ";
          os << static_cast<ParamValue>(p[i]);
        }
        os << ']';
      }
      break;
    }
  }
  return os.str();
}

std::string Printer::definition(DefId id) const {
  const Definition& d = ctx_.definition(id);
  std::ostringstream os;
  os << d.name;
  if (!d.params.empty()) {
    os << '[';
    for (std::size_t i = 0; i < d.params.size(); ++i) {
      if (i != 0) os << ", ";
      os << d.params[i];
    }
    os << ']';
  }
  os << " = ";
  if (d.body == kInvalidOpenTerm)
    os << "<undefined>";
  else
    os << open_term(d.body, d.params);
  return os.str();
}

std::string Printer::module() const {
  std::ostringstream os;
  for (DefId i = 0; i < ctx_.definition_count(); ++i)
    os << definition(i) << "\n";
  return os.str();
}

}  // namespace aadlsched::acsr
