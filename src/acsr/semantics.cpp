#include "acsr/semantics.hpp"

#include <algorithm>
#include <tuple>

#include "acsr/preemption.hpp"

namespace aadlsched::acsr {

namespace {

std::tuple<int, std::uint32_t, std::uint32_t, std::uint32_t, TermId>
sort_key(const Transition& t) {
  return {static_cast<int>(t.label.kind), t.label.action,
          t.label.event * 2u + (t.label.send ? 1u : 0u),
          static_cast<std::uint32_t>(t.label.priority), t.target};
}

void canonicalize(std::vector<Transition>& ts) {
  std::sort(ts.begin(), ts.end(), [](const Transition& a, const Transition& b) {
    return sort_key(a) < sort_key(b);
  });
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
}

}  // namespace

std::vector<Transition> Semantics::transitions(TermId t) {
  if (memoize_) {
    if (const FanRef* ref = memo_.find(t)) {
      ++stats_.memo_hits;
      const auto first = fan_arena_.begin() + ref->offset;
      return {first, first + ref->len};
    }
  }
  ++stats_.computed;
  std::vector<Transition> ts = compute(t);
  canonicalize(ts);
  if (memoize_) {
    // Nested transitions() calls inside compute() appended their own
    // windows first, so the arena tail is free here.
    const auto offset = static_cast<std::uint32_t>(fan_arena_.size());
    fan_arena_.insert(fan_arena_.end(), ts.begin(), ts.end());
    memo_.emplace(t, FanRef{offset, static_cast<std::uint32_t>(ts.size())});
  }
  return ts;
}

std::vector<Transition> Semantics::prioritized(TermId t) {
  std::vector<Transition> ts = transitions(t);
  prioritize(ctx_.actions(), ts);
  return ts;
}

std::vector<Transition> Semantics::compute(TermId t) {
  TermTable& tt = ctx_.terms();
  std::vector<Transition> out;
  // Copy the node: recursive calls below intern new terms, which can
  // reallocate the node table and invalidate references into it.
  const TermNode node = tt.node(t);
  switch (node.kind) {
    case TermKind::Nil:
      break;

    case TermKind::Act:
      out.push_back(Transition{Label::make_action(node.a), node.b});
      break;

    case TermKind::Evt:
      out.push_back(Transition{
          Label::make_event(node.a, node.flag != 0,
                            static_cast<Priority>(node.c)),
          node.b});
      break;

    case TermKind::Choice: {
      const auto p = tt.payload(t);
      const std::vector<TermId> kids(p.begin(), p.end());
      for (TermId k : kids) {
        const std::vector<Transition> ks = transitions(k);
        out.insert(out.end(), ks.begin(), ks.end());
      }
      break;
    }

    case TermKind::Parallel:
      parallel_transitions(t, out);
      break;

    case TermKind::Restrict: {
      const EventSetId fset = node.a;
      const std::vector<Transition> body = transitions(node.b);
      for (const Transition& tr : body) {
        if (tr.label.kind == Label::Kind::Event &&
            ctx_.event_sets().contains(fset, tr.label.event))
          continue;  // restricted: may only synchronize inside
        out.push_back(
            Transition{tr.label, tt.restrict(fset, tr.target)});
      }
      break;
    }

    case TermKind::Scope: {
      const ScopeParts parts = tt.scope_parts(t);
      const std::vector<Transition> body = transitions(parts.body);
      for (const Transition& tr : body) {
        if (tr.label.is_timed()) {
          ScopeParts next = parts;
          next.body = tr.target;
          if (next.time_left != kInfiniteTime) --next.time_left;
          out.push_back(Transition{tr.label, tt.scope(next)});
        } else if (tr.label.kind == Label::Kind::Event &&
                   tr.label.send && parts.exception_label != 0 &&
                   tr.label.event == parts.exception_label) {
          // Voluntary exit: control transfers to the exception
          // continuation, the scope is dissolved.
          const TermId target = parts.exception_cont == kInvalidTerm
                                    ? kNil
                                    : parts.exception_cont;
          out.push_back(Transition{tr.label, target});
        } else {
          // Events are instantaneous: the clock of the scope is unchanged.
          ScopeParts next = parts;
          next.body = tr.target;
          out.push_back(Transition{tr.label, tt.scope(next)});
        }
      }
      if (parts.interrupt_handler != kInvalidTerm) {
        // The interrupt handler's initial steps remain enabled for the
        // lifetime of the scope; taking one abandons the body.
        const std::vector<Transition> intr =
            transitions(parts.interrupt_handler);
        out.insert(out.end(), intr.begin(), intr.end());
      }
      break;
    }

    case TermKind::Call: {
      const TermId body = ctx_.unfold(t);
      out = transitions(body);
      break;
    }
  }
  return out;
}

void Semantics::parallel_transitions(TermId t, std::vector<Transition>& out) {
  TermTable& tt = ctx_.terms();
  const auto p = tt.payload(t);
  const std::vector<TermId> kids(p.begin(), p.end());
  const std::size_t n = kids.size();

  // Child fans, copied up front: computing one child's fan can invalidate
  // references produced for another.
  std::vector<std::vector<Transition>> fans(n);
  for (std::size_t i = 0; i < n; ++i) fans[i] = transitions(kids[i]);

  std::vector<TermId> scratch;
  const auto rebuilt = [&](std::size_t i, TermId replacement) {
    scratch = kids;
    scratch[i] = replacement;
    return tt.parallel(scratch);
  };

  // Par1/Par2: events and taus of one component interleave.
  for (std::size_t i = 0; i < n; ++i) {
    for (const Transition& tr : fans[i]) {
      if (tr.label.is_timed()) continue;
      out.push_back(Transition{tr.label, rebuilt(i, tr.target)});
    }
  }

  // Par4: matching send/receive pairs synchronize into tau. The tau's
  // priority is the sum of the two offers; it remembers the event label.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      for (const Transition& ti : fans[i]) {
        if (ti.label.kind != Label::Kind::Event) continue;
        for (const Transition& tj : fans[j]) {
          if (tj.label.kind != Label::Kind::Event) continue;
          if (ti.label.event != tj.label.event ||
              ti.label.send == tj.label.send)
            continue;
          scratch = kids;
          scratch[i] = ti.target;
          scratch[j] = tj.target;
          out.push_back(Transition{
              Label::make_tau(ti.label.event,
                              ti.label.priority + tj.label.priority),
              tt.parallel(scratch)});
        }
      }
    }
  }

  // Par3: one global timed action combining a timed step of *every*
  // component, resource sets pairwise disjoint. Built as a left fold over
  // the components; if any component offers no timed step, time cannot
  // advance in the composition.
  struct Partial {
    ActionId action = kIdleAction;
    std::vector<TermId> chosen;
  };
  std::vector<Partial> partials(1);
  partials[0].chosen.reserve(n);
  for (std::size_t i = 0; i < n && !partials.empty(); ++i) {
    std::vector<Partial> next;
    for (const Partial& part : partials) {
      for (const Transition& tr : fans[i]) {
        if (!tr.label.is_timed()) continue;
        if (!ctx_.actions().disjoint(part.action, tr.label.action)) continue;
        Partial ext;
        ext.action = ctx_.actions().merge(part.action, tr.label.action);
        ext.chosen = part.chosen;
        ext.chosen.push_back(tr.target);
        next.push_back(std::move(ext));
      }
    }
    partials = std::move(next);
  }
  for (Partial& part : partials) {
    out.push_back(Transition{Label::make_action(part.action),
                             tt.parallel(std::move(part.chosen))});
  }
}

}  // namespace aadlsched::acsr
