// Arithmetic expressions and boolean guards over process parameters.
//
// ACSR definitions are *parameterized processes* (paper §3): a definition
// like Compute[e, t] may guard branches on its parameters (e < cmax) and may
// compute priorities from them. Priority expressions are what make the
// paper's dynamic-priority encodings possible: EDF uses
//     pi = dmax - (d - t)          (paper §5)
// and LLF adds the remaining-execution term. Expressions are evaluated when
// a definition call is instantiated to a ground term, so the exploration
// loop never sees them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "acsr/ids.hpp"

namespace aadlsched::acsr {

enum class ExprKind : std::uint8_t {
  Const,  // value
  Param,  // parameter index within the enclosing definition
  Add,
  Sub,
  Mul,
  Div,  // integer division, division by zero evaluates to 0
  Min,
  Max,
};

struct ExprNode {
  ExprKind kind = ExprKind::Const;
  std::int32_t value = 0;  // Const: constant; Param: parameter index
  ExprId lhs = 0;
  ExprId rhs = 0;

  friend bool operator==(const ExprNode&, const ExprNode&) = default;
};

enum class CondKind : std::uint8_t {
  True,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,   // comparisons of two expressions
  And,
  Or,   // of two conditions
  Not,  // of one condition (lhs)
};

struct CondNode {
  CondKind kind = CondKind::True;
  std::uint32_t lhs = 0;  // ExprId for comparisons, CondId for connectives
  std::uint32_t rhs = 0;

  friend bool operator==(const CondNode&, const CondNode&) = default;
};

/// Interning table for expressions and conditions. Interning keeps
/// definition bodies compact and makes repeated instantiation cheap.
class ExprTable {
 public:
  ExprTable();

  ExprId constant(std::int32_t v);
  ExprId param(std::int32_t index);
  ExprId binary(ExprKind kind, ExprId lhs, ExprId rhs);

  CondId cond_true() const { return kCondTrue; }
  CondId compare(CondKind kind, ExprId lhs, ExprId rhs);
  CondId logic(CondKind kind, CondId lhs, CondId rhs = 0);

  const ExprNode& expr(ExprId id) const { return exprs_[id]; }
  const CondNode& cond(CondId id) const { return conds_[id]; }

  /// Evaluate with the given parameter values. Saturating 64-bit
  /// intermediate arithmetic; result clamped to int32 range.
  std::int64_t eval(ExprId id, std::span<const ParamValue> params) const;
  bool eval_cond(CondId id, std::span<const ParamValue> params) const;

  /// Render for the pretty-printer; param names may be empty (then p0, p1,
  /// ... are used).
  std::string render(ExprId id,
                     std::span<const std::string> param_names) const;
  std::string render_cond(CondId id,
                          std::span<const std::string> param_names) const;

  std::size_t expr_count() const { return exprs_.size(); }

 private:
  ExprId intern_expr(const ExprNode& n);
  CondId intern_cond(const CondNode& n);

  std::vector<ExprNode> exprs_;
  std::vector<CondNode> conds_;
  std::unordered_map<std::uint64_t, std::vector<ExprId>> expr_index_;
  std::unordered_map<std::uint64_t, std::vector<CondId>> cond_index_;
};

}  // namespace aadlsched::acsr
