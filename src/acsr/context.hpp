// Context: owner of every table of the ACSR core.
//
// A Context holds the interners (resources, events), the expression table,
// ground action/event-set/term tables, the open-term arena, and the process
// definitions. Instantiation (open term + parameter values -> ground term)
// and call unfolding live here because they touch all tables.
//
// A Context is single-threaded while a model is being built. For the
// parallel explorer it can be switched into *shared mode*
// (set_shared_mode / SharedModeGuard): every hash-cons table then takes
// striped locks on intern so multiple workers may extend the term DAG
// concurrently. Sweeps over independent model variants still use one
// Context per job (they are cheap to create).
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "acsr/action.hpp"
#include "acsr/expr.hpp"
#include "acsr/open_term.hpp"
#include "acsr/term.hpp"
#include "util/interner.hpp"

namespace aadlsched::acsr {

class Context {
 public:
  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- name tables ---------------------------------------------------
  Resource resource(std::string_view name) { return resources_.intern(name); }
  Event event(std::string_view name) { return events_.intern(name); }
  const std::string& resource_name(Resource r) const {
    return resources_.str(r);
  }
  const std::string& event_name(Event e) const { return events_.str(e); }
  const util::Interner& resource_interner() const { return resources_; }
  const util::Interner& event_interner() const { return events_; }

  // --- sub-tables ----------------------------------------------------
  ExprTable& exprs() { return exprs_; }
  const ExprTable& exprs() const { return exprs_; }
  ActionTable& actions() { return actions_; }
  const ActionTable& actions() const { return actions_; }
  EventSetTable& event_sets() { return event_sets_; }
  const EventSetTable& event_sets() const { return event_sets_; }
  TermTable& terms() { return terms_; }
  const TermTable& terms() const { return terms_; }

  // --- open term constructors -----------------------------------------
  OpenTermId o_nil();
  OpenTermId o_act(std::vector<OpenResourceUse> action, OpenTermId cont);
  OpenTermId o_evt(Event e, bool send, ExprId priority, OpenTermId cont);
  OpenTermId o_choice(std::vector<OpenTermId> children);
  OpenTermId o_parallel(std::vector<OpenTermId> children);
  OpenTermId o_restrict(std::vector<Event> events, OpenTermId body);
  OpenTermId o_scope(OpenTermId body, ExprId timeout, Event exception_label,
                     OpenTermId exception_cont, OpenTermId interrupt_handler,
                     OpenTermId timeout_handler);
  OpenTermId o_call(DefId def, std::vector<ExprId> args);
  OpenTermId o_cond(CondId guard, OpenTermId body);

  const OpenTermNode& open(OpenTermId id) const { return open_terms_[id]; }

  // --- definitions -----------------------------------------------------
  /// Declare a definition by name (body attached later). Allows mutual
  /// recursion. Returns the existing id if the name is already declared.
  DefId declare(std::string_view name);
  /// Attach body and metadata to a previously declared definition.
  void define(DefId id, Definition def);
  /// Declare + define in one step.
  DefId define(Definition def);

  const Definition& definition(DefId id) const { return defs_[id]; }
  Definition& definition_mut(DefId id) { return defs_[id]; }
  std::optional<DefId> find_definition(std::string_view name) const;
  std::size_t definition_count() const { return defs_.size(); }

  // --- instantiation ---------------------------------------------------
  /// Instantiate an open term with concrete parameter values.
  TermId instantiate(OpenTermId open_id, std::span<const ParamValue> params);

  /// Unfold a ground Call term into the instantiated definition body.
  /// Memoized: states revisit the same calls constantly.
  TermId unfold(TermId call_term);

  // --- resource governance ---------------------------------------------
  /// Approximate bytes held by the hash-cons tables (terms, actions,
  /// expressions, interners). Dominated by the term table during
  /// exploration; used with the visited-set footprint to enforce
  /// RunBudget::memory_bytes (util/budget.hpp). Call while no worker is
  /// appending (the explorers probe at expansion/level boundaries).
  std::size_t approx_bytes() const;

  // --- concurrency -----------------------------------------------------
  /// Switch every table into (or out of) shared mode. Must be called while
  /// no other thread touches the Context; definitions and open terms must
  /// already be built (they stay read-only in shared mode).
  void set_shared_mode(bool shared);
  bool shared_mode() const { return shared_; }

  /// RAII shared-mode window, used by versa::explore_parallel.
  class SharedModeGuard {
   public:
    explicit SharedModeGuard(Context& ctx) : ctx_(ctx) {
      ctx_.set_shared_mode(true);
    }
    ~SharedModeGuard() { ctx_.set_shared_mode(false); }
    SharedModeGuard(const SharedModeGuard&) = delete;
    SharedModeGuard& operator=(const SharedModeGuard&) = delete;

   private:
    Context& ctx_;
  };

 private:
  static constexpr std::size_t kUnfoldShards = 16;
  struct UnfoldShard {
    std::mutex mu;
    std::unordered_map<TermId, TermId> memo;
  };

  OpenTermId push_open(OpenTermNode n);

  util::Interner resources_;
  util::Interner events_;
  ExprTable exprs_;
  ActionTable actions_;
  EventSetTable event_sets_;
  TermTable terms_;
  std::deque<OpenTermNode> open_terms_;
  std::deque<Definition> defs_;
  std::unordered_map<std::string, DefId> def_index_;
  std::unique_ptr<UnfoldShard[]> unfold_shards_ =
      std::make_unique<UnfoldShard[]>(kUnfoldShards);
  bool shared_ = false;
};

}  // namespace aadlsched::acsr
