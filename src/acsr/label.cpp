#include "acsr/label.hpp"

#include <algorithm>
#include <sstream>

#include "acsr/context.hpp"

namespace aadlsched::acsr {

std::string render_action(const Context& ctx, ActionId action) {
  // Sort by resource *name* so renderings are independent of interning
  // order (resource ids are assigned in first-seen order).
  std::vector<ResourceUse> uses = ctx.actions().uses(action);
  std::sort(uses.begin(), uses.end(),
            [&](const ResourceUse& a, const ResourceUse& b) {
              return ctx.resource_name(a.resource) <
                     ctx.resource_name(b.resource);
            });
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < uses.size(); ++i) {
    if (i != 0) os << ',';
    os << '(' << ctx.resource_name(uses[i].resource) << ','
       << uses[i].priority << ')';
  }
  os << '}';
  return os.str();
}

std::string render_label(const Context& ctx, const Label& label) {
  std::ostringstream os;
  switch (label.kind) {
    case Label::Kind::Action: {
      os << render_action(ctx, label.action);
      break;
    }
    case Label::Kind::Event:
      os << ctx.event_name(label.event) << (label.send ? '!' : '?') << ':'
         << label.priority;
      break;
    case Label::Kind::Tau:
      os << "tau@" << ctx.event_name(label.event) << ':' << label.priority;
      break;
  }
  return os.str();
}

}  // namespace aadlsched::acsr
