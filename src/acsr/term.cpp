#include "acsr/term.hpp"

#include <algorithm>
#include <cassert>

#include "util/hash.hpp"

namespace aadlsched::acsr {

namespace {

std::uint64_t hash_node(const TermNode& n,
                        std::span<const std::uint32_t> payload) {
  std::uint64_t h = util::mix64(static_cast<std::uint64_t>(n.kind) |
                                (static_cast<std::uint64_t>(n.flag) << 8));
  h = util::hash_combine(h, n.a);
  h = util::hash_combine(h, n.b);
  h = util::hash_combine(h, n.c);
  for (std::uint32_t w : payload) h = util::hash_combine(h, w);
  return h;
}

}  // namespace

TermTable::TermTable() {
  // TermId 0 is NIL.
  nodes_.push_back(TermNode{});
  const std::uint64_t h = hash_node(nodes_[0], {});
  shards_[h % kIndexShards].buckets[h].push_back(kNil);
}

std::span<const std::uint32_t> TermTable::payload(TermId id) const {
  const TermNode& n = nodes_[id];
  return arena_.view(n.extra, n.extra_len);
}

TermId TermTable::find_in_bucket(const IndexShard& shard, std::uint64_t h,
                                 const TermNode& proto,
                                 std::span<const std::uint32_t> payload) const {
  const auto it = shard.buckets.find(h);
  if (it == shard.buckets.end()) return kInvalidTerm;
  for (TermId id : it->second) {
    const TermNode& n = nodes_[id];
    if (n.kind == proto.kind && n.flag == proto.flag && n.a == proto.a &&
        n.b == proto.b && n.c == proto.c && n.extra_len == proto.extra_len &&
        std::equal(payload.begin(), payload.end(),
                   arena_.view(n.extra, n.extra_len).begin()))
      return id;
  }
  return kInvalidTerm;
}

TermId TermTable::intern(TermNode proto,
                         std::span<const std::uint32_t> payload) {
  proto.extra_len = static_cast<std::uint32_t>(payload.size());
  const std::uint64_t h = hash_node(proto, payload);
  IndexShard& shard = shards_[h % kIndexShards];

  if (!shared_) {
    if (const TermId hit = find_in_bucket(shard, h, proto, payload);
        hit != kInvalidTerm)
      return hit;
    proto.extra = static_cast<std::uint32_t>(arena_.append_span(payload));
    const TermId id = static_cast<TermId>(nodes_.push_back(proto));
    shard.buckets[h].push_back(id);
    return id;
  }

  // Shared mode: equal protos hash to the same shard, so holding the shard
  // lock across probe + publish makes the dedup atomic; the global append
  // lock serializes storage growth across shards. Lock order is always
  // shard -> append.
  std::lock_guard shard_lk(shard.mu);
  if (const TermId hit = find_in_bucket(shard, h, proto, payload);
      hit != kInvalidTerm)
    return hit;
  TermId id;
  {
    std::lock_guard append_lk(append_mu_);
    proto.extra = static_cast<std::uint32_t>(arena_.append_span(payload));
    id = static_cast<TermId>(nodes_.push_back(proto));
  }
  shard.buckets[h].push_back(id);
  return id;
}

TermId TermTable::act(ActionId action, TermId cont) {
  TermNode n;
  n.kind = TermKind::Act;
  n.a = action;
  n.b = cont;
  return intern(n, {});
}

TermId TermTable::evt(Event e, bool send, Priority priority, TermId cont) {
  TermNode n;
  n.kind = TermKind::Evt;
  n.flag = send ? 1 : 0;
  n.a = e;
  n.b = cont;
  n.c = static_cast<std::uint32_t>(priority);
  return intern(n, {});
}

TermId TermTable::choice(std::vector<TermId> alts) {
  // Flatten nested choices, drop NIL (neutral for choice), sort, dedup.
  std::vector<TermId> flat;
  flat.reserve(alts.size());
  for (std::size_t i = 0; i < alts.size(); ++i) {
    const TermId t = alts[i];
    if (t == kNil) continue;
    if (nodes_[t].kind == TermKind::Choice) {
      const auto p = payload(t);  // chunked arena: span stays valid
      flat.insert(flat.end(), p.begin(), p.end());
    } else {
      flat.push_back(t);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.empty()) return kNil;
  if (flat.size() == 1) return flat[0];
  TermNode n;
  n.kind = TermKind::Choice;
  return intern(n, flat);
}

TermId TermTable::parallel(std::vector<TermId> procs) {
  std::vector<TermId> flat;
  flat.reserve(procs.size());
  for (TermId t : procs) {
    if (nodes_[t].kind == TermKind::Parallel) {
      const auto p = payload(t);
      flat.insert(flat.end(), p.begin(), p.end());
    } else {
      flat.push_back(t);
    }
  }
  if (flat.empty()) return kNil;
  std::sort(flat.begin(), flat.end());
  if (flat.size() == 1) return flat[0];
  // NIL components must be kept (a dead component blocks global time
  // progress), but a composition of only NILs is itself NIL.
  if (flat.back() == kNil) return kNil;  // sorted: back()==0 => all zero
  TermNode n;
  n.kind = TermKind::Parallel;
  return intern(n, flat);
}

TermId TermTable::restrict(EventSetId events, TermId body) {
  if (body == kNil) return kNil;
  TermNode n;
  n.kind = TermKind::Restrict;
  n.a = events;
  n.b = body;
  return intern(n, {});
}

TermId TermTable::scope(const ScopeParts& parts) {
  if (parts.time_left == 0) {
    // Timed out at construction: behave as the timeout handler.
    return parts.timeout_handler == kInvalidTerm ? kNil
                                                 : parts.timeout_handler;
  }
  TermNode n;
  n.kind = TermKind::Scope;
  n.a = parts.body;
  n.b = static_cast<std::uint32_t>(parts.time_left);
  n.c = parts.exception_label;
  const std::uint32_t payload[3] = {parts.exception_cont,
                                    parts.interrupt_handler,
                                    parts.timeout_handler};
  return intern(n, payload);
}

ScopeParts TermTable::scope_parts(TermId id) const {
  const TermNode& n = nodes_[id];
  assert(n.kind == TermKind::Scope);
  const auto p = payload(id);
  ScopeParts parts;
  parts.body = n.a;
  parts.time_left = static_cast<TimeValue>(n.b);
  parts.exception_label = n.c;
  parts.exception_cont = p[0];
  parts.interrupt_handler = p[1];
  parts.timeout_handler = p[2];
  return parts;
}

TermId TermTable::call(DefId def, std::span<const ParamValue> args) {
  TermNode n;
  n.kind = TermKind::Call;
  n.a = def;
  std::vector<std::uint32_t> payload(args.size());
  for (std::size_t i = 0; i < args.size(); ++i)
    payload[i] = static_cast<std::uint32_t>(args[i]);
  return intern(n, payload);
}

}  // namespace aadlsched::acsr
