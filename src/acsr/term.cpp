#include "acsr/term.hpp"

#include <algorithm>
#include <cassert>

#include "util/hash.hpp"

namespace aadlsched::acsr {

namespace {

std::uint64_t hash_node(const TermNode& n,
                        std::span<const std::uint32_t> payload) {
  std::uint64_t h = util::mix64(static_cast<std::uint64_t>(n.kind) |
                                (static_cast<std::uint64_t>(n.flag) << 8));
  h = util::hash_combine(h, n.a);
  h = util::hash_combine(h, n.b);
  h = util::hash_combine(h, n.c);
  for (std::uint32_t w : payload) h = util::hash_combine(h, w);
  return h;
}

}  // namespace

TermTable::TermTable() {
  // TermId 0 is NIL.
  nodes_.push_back(TermNode{});
  index_[hash_node(nodes_[0], {})].push_back(kNil);
}

std::span<const std::uint32_t> TermTable::payload(TermId id) const {
  const TermNode& n = nodes_[id];
  return std::span<const std::uint32_t>(arena_).subspan(n.extra, n.extra_len);
}

TermId TermTable::intern(TermNode proto,
                         std::span<const std::uint32_t> payload) {
  proto.extra_len = static_cast<std::uint32_t>(payload.size());
  const std::uint64_t h = hash_node(proto, payload);
  auto& bucket = index_[h];
  for (TermId id : bucket) {
    const TermNode& n = nodes_[id];
    if (n.kind == proto.kind && n.flag == proto.flag && n.a == proto.a &&
        n.b == proto.b && n.c == proto.c && n.extra_len == proto.extra_len &&
        std::equal(payload.begin(), payload.end(),
                   arena_.begin() + n.extra))
      return id;
  }
  proto.extra = static_cast<std::uint32_t>(arena_.size());
  arena_.insert(arena_.end(), payload.begin(), payload.end());
  const TermId id = static_cast<TermId>(nodes_.size());
  nodes_.push_back(proto);
  bucket.push_back(id);
  return id;
}

TermId TermTable::act(ActionId action, TermId cont) {
  TermNode n;
  n.kind = TermKind::Act;
  n.a = action;
  n.b = cont;
  return intern(n, {});
}

TermId TermTable::evt(Event e, bool send, Priority priority, TermId cont) {
  TermNode n;
  n.kind = TermKind::Evt;
  n.flag = send ? 1 : 0;
  n.a = e;
  n.b = cont;
  n.c = static_cast<std::uint32_t>(priority);
  return intern(n, {});
}

TermId TermTable::choice(std::vector<TermId> alts) {
  // Flatten nested choices, drop NIL (neutral for choice), sort, dedup.
  std::vector<TermId> flat;
  flat.reserve(alts.size());
  for (std::size_t i = 0; i < alts.size(); ++i) {
    const TermId t = alts[i];
    if (t == kNil) continue;
    if (nodes_[t].kind == TermKind::Choice) {
      const auto p = payload(t);
      // payload() span stays valid: no construction happens while copying.
      flat.insert(flat.end(), p.begin(), p.end());
    } else {
      flat.push_back(t);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.empty()) return kNil;
  if (flat.size() == 1) return flat[0];
  TermNode n;
  n.kind = TermKind::Choice;
  return intern(n, flat);
}

TermId TermTable::parallel(std::vector<TermId> procs) {
  std::vector<TermId> flat;
  flat.reserve(procs.size());
  for (TermId t : procs) {
    if (nodes_[t].kind == TermKind::Parallel) {
      const auto p = payload(t);
      flat.insert(flat.end(), p.begin(), p.end());
    } else {
      flat.push_back(t);
    }
  }
  if (flat.empty()) return kNil;
  std::sort(flat.begin(), flat.end());
  if (flat.size() == 1) return flat[0];
  // NIL components must be kept (a dead component blocks global time
  // progress), but a composition of only NILs is itself NIL.
  if (flat.back() == kNil) return kNil;  // sorted: back()==0 => all zero
  TermNode n;
  n.kind = TermKind::Parallel;
  return intern(n, flat);
}

TermId TermTable::restrict(EventSetId events, TermId body) {
  if (body == kNil) return kNil;
  TermNode n;
  n.kind = TermKind::Restrict;
  n.a = events;
  n.b = body;
  return intern(n, {});
}

TermId TermTable::scope(const ScopeParts& parts) {
  if (parts.time_left == 0) {
    // Timed out at construction: behave as the timeout handler.
    return parts.timeout_handler == kInvalidTerm ? kNil
                                                 : parts.timeout_handler;
  }
  TermNode n;
  n.kind = TermKind::Scope;
  n.a = parts.body;
  n.b = static_cast<std::uint32_t>(parts.time_left);
  n.c = parts.exception_label;
  const std::uint32_t payload[3] = {parts.exception_cont,
                                    parts.interrupt_handler,
                                    parts.timeout_handler};
  return intern(n, payload);
}

ScopeParts TermTable::scope_parts(TermId id) const {
  const TermNode& n = nodes_[id];
  assert(n.kind == TermKind::Scope);
  const auto p = payload(id);
  ScopeParts parts;
  parts.body = n.a;
  parts.time_left = static_cast<TimeValue>(n.b);
  parts.exception_label = n.c;
  parts.exception_cont = p[0];
  parts.interrupt_handler = p[1];
  parts.timeout_handler = p[2];
  return parts;
}

TermId TermTable::call(DefId def, std::span<const ParamValue> args) {
  TermNode n;
  n.kind = TermKind::Call;
  n.a = def;
  std::vector<std::uint32_t> payload(args.size());
  for (std::size_t i = 0; i < args.size(); ++i)
    payload[i] = static_cast<std::uint32_t>(args[i]);
  return intern(n, payload);
}

}  // namespace aadlsched::acsr
