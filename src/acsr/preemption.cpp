#include "acsr/preemption.hpp"

#include <algorithm>

namespace aadlsched::acsr {

bool preempted_by(const ActionTable& actions, const Label& a,
                  const Label& b) {
  using K = Label::Kind;
  switch (a.kind) {
    case K::Action:
      if (b.kind == K::Action)
        return actions.preempts(a.action, b.action);
      if (b.kind == K::Tau) return b.priority > 0;
      return false;
    case K::Event:
      return b.kind == K::Event && a.event == b.event && a.send == b.send &&
             b.priority > a.priority;
    case K::Tau:
      return b.kind == K::Tau && b.priority > a.priority;
  }
  return false;
}

void prioritize(const ActionTable& actions, std::vector<Transition>& ts) {
  // O(n^2) pairwise check; transition fans are small (tens) in practice.
  // A transition is kept iff nothing in the *full* set preempts it (the
  // relation is applied against all siblings, including ones that are
  // themselves preempted; preemption chains are consistent because the
  // underlying orders are transitive).
  std::vector<bool> dead(ts.size(), false);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    for (std::size_t j = 0; j < ts.size(); ++j) {
      if (i == j) continue;
      if (preempted_by(actions, ts[i].label, ts[j].label)) {
        dead[i] = true;
        break;
      }
    }
  }
  std::size_t w = 0;
  for (std::size_t i = 0; i < ts.size(); ++i)
    if (!dead[i]) ts[w++] = ts[i];
  ts.resize(w);
}

}  // namespace aadlsched::acsr
