// Recursive-descent parser for the AADL textual subset (see ast.hpp).
//
// Error recovery is per-declaration: a malformed clause skips to the next
// ';' and parsing continues, so one mistake yields one diagnostic instead
// of a cascade.
#pragma once

#include <string_view>

#include "aadl/ast.hpp"
#include "util/diagnostics.hpp"

namespace aadlsched::aadl {

/// Parse AADL source text into `model` (packages accumulate across calls,
/// so multi-file models are supported by parsing each file in turn).
/// Returns false when any error was reported.
bool parse_aadl(Model& model, std::string_view source,
                util::DiagnosticEngine& diags);

}  // namespace aadlsched::aadl
