// Lexer for the AADL textual syntax. AADL comments run from "--" to end of
// line; identifiers are case-insensitive (we keep the original spelling and
// compare lowercased); numbers may carry unit identifiers which are lexed
// as separate Ident tokens.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/diagnostics.hpp"

namespace aadlsched::aadl {

enum class TokKind : std::uint8_t {
  End,
  Ident,
  Integer,
  Real,
  String,
  ColonColon,  // ::
  Arrow,       // ->
  BiArrow,     // <->
  Assoc,       // =>
  AppendAssoc, // +=>
  DotDot,      // ..
  Dot,
  Colon,
  Semicolon,
  Comma,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Plus,
  Minus,
  Star,
};

struct AadlToken {
  TokKind kind = TokKind::End;
  std::string_view text;
  std::int64_t int_value = 0;
  double real_value = 0.0;
  util::SourceLoc loc;
};

/// Tokenize the whole buffer. Lexical errors are reported to `diags`;
/// offending characters are skipped so parsing can continue.
std::vector<AadlToken> lex(std::string_view source,
                           util::DiagnosticEngine& diags);

}  // namespace aadlsched::aadl
