#include "aadl/instance.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "util/string_utils.hpp"

namespace aadlsched::aadl {

namespace {

constexpr int kMaxDepth = 32;

}  // namespace

const ComponentInstance* ComponentInstance::find_child(
    std::string_view lowered) const {
  for (const auto& c : children)
    if (c->name == lowered) return c.get();
  return nullptr;
}

ComponentInstance* ComponentInstance::find_child(std::string_view lowered) {
  for (auto& c : children)
    if (c->name == lowered) return c.get();
  return nullptr;
}

const ComponentInstance* ComponentInstance::resolve(
    const std::vector<std::string>& path) const {
  const ComponentInstance* cur = this;
  for (const std::string& seg : path) {
    cur = cur->find_child(seg);
    if (!cur) return nullptr;
  }
  return cur;
}

std::string SemanticConnection::describe() const {
  std::string out;
  out += source ? source->path : "?";
  out += ".";
  out += source_port;
  out += " -> ";
  out += destination ? destination->path : "?";
  out += ".";
  out += destination_port;
  return out;
}

const ComponentInstance* InstanceModel::find(
    std::string_view dotted_path) const {
  if (!root) return nullptr;
  if (dotted_path.empty()) return root.get();
  const ComponentInstance* cur = root.get();
  for (std::string_view seg : util::split(dotted_path, '.')) {
    cur = cur->find_child(util::to_lower(seg));
    if (!cur) return nullptr;
  }
  return cur;
}

std::vector<const ComponentInstance*> InstanceModel::threads_on(
    const ComponentInstance* processor) const {
  std::vector<const ComponentInstance*> out;
  for (const ComponentInstance* t : threads) {
    auto it = bindings.find(t);
    if (it != bindings.end() && it->second == processor) out.push_back(t);
  }
  return out;
}

namespace {

class Instantiator {
 public:
  Instantiator(const Model& model, util::DiagnosticEngine& diags)
      : model_(model), diags_(diags) {}

  std::unique_ptr<InstanceModel> run(std::string_view root_impl) {
    const std::string lowered = util::to_lower(root_impl);
    const ComponentImpl* impl = model_.find_impl(lowered);
    if (!impl) {
      diags_.error({}, "root implementation '" + std::string(root_impl) +
                           "' not found");
      return nullptr;
    }
    auto im = std::make_unique<InstanceModel>();
    im_ = im.get();
    im->root = build(impl->category, impl->type_name, impl, "", "", nullptr, 0);
    if (!im->root) return nullptr;
    collect(im->root.get());
    resolve_connections();
    resolve_processor_bindings();
    return im;
  }

 private:
  std::unique_ptr<ComponentInstance> build(Category cat,
                                           const std::string& type_name,
                                           const ComponentImpl* impl,
                                           const std::string& name,
                                           const std::string& path,
                                           ComponentInstance* parent,
                                           int depth) {
    if (depth > kMaxDepth) {
      diags_.error({}, "instantiation exceeds depth " +
                           std::to_string(kMaxDepth) +
                           " (recursive classifiers?) at '" + path + "'");
      return nullptr;
    }
    auto inst = std::make_unique<ComponentInstance>();
    inst->category = cat;
    inst->name = name;
    inst->path = path;
    inst->impl = impl;
    inst->type = model_.find_type(type_name);
    inst->parent = parent;
    if (impl) {
      for (const Subcomponent& sc : impl->subcomponents) {
        const std::string child_path =
            path.empty() ? sc.name : path + "." + sc.name;
        const ComponentImpl* child_impl = nullptr;
        std::string child_type = sc.classifier;
        if (!sc.classifier.empty()) {
          child_impl = model_.find_impl(sc.classifier);
          if (child_impl) {
            child_type = child_impl->type_name;
          } else if (!model_.find_type(sc.classifier)) {
            diags_.warning(sc.loc, "classifier '" + sc.classifier +
                                       "' of subcomponent '" + child_path +
                                       "' not found; instantiating bare");
          }
        }
        auto child = build(sc.category, child_type, child_impl, sc.name,
                           child_path, inst.get(), depth + 1);
        if (child) inst->children.push_back(std::move(child));
      }
    }
    return inst;
  }

  void collect(ComponentInstance* inst) {
    switch (inst->category) {
      case Category::Thread: im_->threads.push_back(inst); break;
      case Category::Processor: im_->processors.push_back(inst); break;
      case Category::Bus: im_->buses.push_back(inst); break;
      case Category::Device: im_->devices.push_back(inst); break;
      case Category::Data: im_->data_components.push_back(inst); break;
      default: break;
    }
    for (auto& c : inst->children) collect(c.get());
  }

  // --- semantic connections ------------------------------------------------

  struct Endpoint {
    const ComponentInstance* inst = nullptr;
    std::string port;

    bool operator<(const Endpoint& o) const {
      return inst != o.inst ? inst < o.inst : port < o.port;
    }
    bool operator==(const Endpoint& o) const = default;
  };

  struct Edge {
    Endpoint src;
    Endpoint dst;
    std::string name;
    const ComponentInstance* context = nullptr;  // where it was declared
    std::optional<FeatureKind> kind;
  };

  std::optional<Endpoint> resolve_endpoint(
      const ComponentInstance* ctx, const std::vector<std::string>& path,
      util::SourceLoc loc) {
    if (path.size() == 1) {
      return Endpoint{ctx, path[0]};
    }
    if (path.size() == 2) {
      const ComponentInstance* child = ctx->find_child(path[0]);
      if (!child) {
        diags_.error(loc, "connection endpoint '" + path[0] + "." + path[1] +
                              "': no subcomponent '" + path[0] + "' in '" +
                              (ctx->path.empty() ? "<root>" : ctx->path) +
                              "'");
        return std::nullopt;
      }
      return Endpoint{child, path[1]};
    }
    diags_.error(loc, "connection endpoints must have 1 or 2 segments");
    return std::nullopt;
  }

  const Feature* endpoint_feature(const Endpoint& ep) const {
    return ep.inst->type ? ep.inst->type->find_feature(ep.port) : nullptr;
  }

  void resolve_connections() {
    std::vector<Edge> edges;
    collect_edges(im_->root.get(), edges);

    // Index edges by source endpoint for chain following.
    std::multimap<Endpoint, const Edge*> by_src;
    for (const Edge& e : edges) by_src.emplace(e.src, &e);

    // Access connections (thread <-> data/bus) become direct records; they
    // do not chain. Port connections starting at a thread/device out port
    // are chased to their ultimate destinations.
    for (const Edge& e : edges) {
      if (!e.src.inst->is_thread_or_device()) continue;
      // Only start at genuine out ports of the source (or unknown types).
      if (const Feature* f = endpoint_feature(e.src)) {
        if (f->direction == Direction::In) continue;
      }
      chase(e, by_src);
    }
  }

  void collect_edges(const ComponentInstance* inst, std::vector<Edge>& out) {
    if (inst->impl) {
      for (const ConnectionDecl& cd : inst->impl->connections) {
        if (cd.kind == FeatureKind::BusAccess ||
            cd.kind == FeatureKind::DataAccess)
          continue;  // access connections: out of the translation's scope
        auto src = resolve_endpoint(inst, cd.source, cd.loc);
        auto dst = resolve_endpoint(inst, cd.destination, cd.loc);
        if (!src || !dst) continue;
        out.push_back(Edge{*src, *dst, cd.name, inst, cd.kind});
        if (cd.bidirectional)
          out.push_back(Edge{*dst, *src, cd.name, inst, cd.kind});
      }
    }
    for (const auto& c : inst->children) collect_edges(c.get(), out);
  }

  void chase(const Edge& first, const std::multimap<Endpoint, const Edge*>& by_src) {
    struct State {
      Endpoint at;
      std::vector<const Edge*> chain;
    };
    std::deque<State> work;
    work.push_back(State{first.dst, {&first}});
    std::set<Endpoint> visited;
    while (!work.empty()) {
      State st = std::move(work.front());
      work.pop_front();
      if (st.chain.size() > 64) continue;  // cycle guard
      if (st.at.inst->is_thread_or_device()) {
        emit_semantic(first, st);
        continue;
      }
      auto [lo, hi] = by_src.equal_range(st.at);
      if (lo == hi) {
        // Dead end: a connection into a non-thread component with no
        // continuation. Harmless (e.g. a device we do not model), ignore.
        continue;
      }
      for (auto it = lo; it != hi; ++it) {
        State next;
        next.at = it->second->dst;
        next.chain = st.chain;
        next.chain.push_back(it->second);
        work.push_back(std::move(next));
      }
    }
  }

  void emit_semantic(const Edge& first, const auto& st) {
    SemanticConnection sc;
    sc.source = first.src.inst;
    sc.source_port = first.src.port;
    sc.destination = st.at.inst;
    sc.destination_port = st.at.port;
    for (const Edge* e : st.chain) sc.via.push_back(e->name);

    // Kind: destination feature wins, then source feature, then the first
    // declared kind hint, then data port.
    if (const Feature* f = endpoint_feature(st.at)) {
      sc.kind = f->kind;
    } else if (const Feature* f2 = endpoint_feature(first.src)) {
      sc.kind = f2->kind;
    } else {
      for (const Edge* e : st.chain)
        if (e->kind) {
          sc.kind = *e->kind;
          break;
        }
    }

    // Bus binding: any Actual_Connection_Binding applying to a connection
    // name along the chain, declared at or above its context.
    for (const Edge* e : st.chain) {
      if (const ComponentInstance* bus = connection_bus(e)) {
        sc.bus = bus;
        break;
      }
    }
    im_->connections.push_back(std::move(sc));
  }

  const ComponentInstance* connection_bus(const Edge* e) {
    // Search the declaring context and its ancestors for
    // Actual_Connection_Binding applies to <this connection name>.
    for (const ComponentInstance* scope = e->context; scope;
         scope = scope->parent) {
      if (!scope->impl) continue;
      for (const PropertyAssociation& pa : scope->impl->properties) {
        if (!ends_with_name(pa.name, "actual_connection_binding")) continue;
        for (const auto& target : pa.applies_to) {
          if (target.size() == 1 && target[0] == e->name &&
              scope == e->context) {
            if (const auto* ref =
                    std::get_if<ReferenceValue>(&pa.value.data)) {
              const ComponentInstance* bus = scope->resolve(ref->path);
              if (!bus)
                diags_.warning(pa.loc, "connection binding of '" + e->name +
                                           "' references unknown component");
              return bus;
            }
          }
        }
      }
    }
    return nullptr;
  }

  static bool ends_with_name(std::string_view qualified,
                             std::string_view name) {
    const auto pos = qualified.rfind("::");
    const std::string_view last =
        pos == std::string_view::npos ? qualified : qualified.substr(pos + 2);
    return last == name;
  }

  // --- processor bindings ---------------------------------------------------

  struct Binding {
    const ComponentInstance* target = nullptr;
    const ComponentInstance* processor = nullptr;
    std::size_t depth = 0;
  };

  void resolve_processor_bindings() {
    std::vector<Binding> found;
    walk_bindings(im_->root.get(), found);
    // Shallower (less specific) targets first, deeper override.
    std::stable_sort(found.begin(), found.end(),
                     [](const Binding& a, const Binding& b) {
                       return a.depth < b.depth;
                     });
    for (const Binding& bind : found) {
      apply_binding(bind.target, bind.processor);
    }
  }

  void walk_bindings(const ComponentInstance* inst,
                     std::vector<Binding>& out) {
    if (inst->impl) {
      for (const PropertyAssociation& pa : inst->impl->properties) {
        if (!ends_with_name(pa.name, "actual_processor_binding")) continue;
        const auto* ref = std::get_if<ReferenceValue>(&pa.value.data);
        if (!ref) {
          diags_.warning(pa.loc,
                         "Actual_Processor_Binding value is not a reference");
          continue;
        }
        const ComponentInstance* cpu = inst->resolve(ref->path);
        if (!cpu || cpu->category != Category::Processor) {
          diags_.error(pa.loc,
                       "Actual_Processor_Binding does not reference a "
                       "processor instance");
          continue;
        }
        if (pa.applies_to.empty()) {
          out.push_back({inst, cpu, path_depth(inst->path)});
          continue;
        }
        for (const auto& target_path : pa.applies_to) {
          const ComponentInstance* target = inst->resolve(target_path);
          if (!target) {
            diags_.error(pa.loc, "binding target '" +
                                     util::join(
                                         {target_path.begin(),
                                          target_path.end()},
                                         ".") +
                                     "' not found");
            continue;
          }
          out.push_back({target, cpu, path_depth(target->path)});
        }
      }
    }
    for (const auto& c : inst->children) walk_bindings(c.get(), out);
  }

  static std::size_t path_depth(const std::string& path) {
    if (path.empty()) return 0;
    return 1 + static_cast<std::size_t>(
                   std::count(path.begin(), path.end(), '.'));
  }

  void apply_binding(const ComponentInstance* target,
                     const ComponentInstance* cpu) {
    if (target->category == Category::Thread) {
      im_->bindings[target] = cpu;
      return;
    }
    for (const auto& c : target->children) apply_binding(c.get(), cpu);
  }

  const Model& model_;
  util::DiagnosticEngine& diags_;
  InstanceModel* im_ = nullptr;
};

}  // namespace

// Context chains for find_connection_property, keyed by the InstanceModel.
// Stored inside the model would be cleaner; to keep the public structs
// simple we re-derive the information on demand instead.
const PropertyValue* find_connection_property(
    const InstanceModel& model, const SemanticConnection& conn,
    std::string_view lowered_name) {
  // 1) Feature-level association on the destination thread's type
  //    (written as  port { Queue_Size => 2; }  and stored with
  //    applies_to = [port name]).
  if (conn.destination && conn.destination->type) {
    for (const PropertyAssociation& pa : conn.destination->type->properties) {
      if (util::to_lower(pa.name) != lowered_name) continue;
      for (const auto& t : pa.applies_to)
        if (t.size() == 1 && t[0] == conn.destination_port) return &pa.value;
    }
  }
  // 2) Associations applying to any syntactic connection name of the chain,
  //    searched over the whole instance tree.
  struct Walker {
    const SemanticConnection& conn;
    std::string_view name;
    const PropertyValue* found = nullptr;

    void visit(const ComponentInstance* inst) {
      if (found) return;
      if (inst->impl) {
        for (const PropertyAssociation& pa : inst->impl->properties) {
          if (util::to_lower(pa.name) != name) {
            // also accept qualified names ending in ::name
            const auto pos = pa.name.rfind("::");
            if (pos == std::string::npos ||
                pa.name.substr(pos + 2) != name)
              continue;
          }
          for (const auto& t : pa.applies_to) {
            if (t.size() != 1) continue;
            for (const std::string& via : conn.via) {
              if (t[0] == via) {
                found = &pa.value;
                return;
              }
            }
          }
        }
      }
      for (const auto& c : inst->children) visit(c.get());
    }
  };
  Walker w{conn, lowered_name};
  if (model.root) w.visit(model.root.get());
  return w.found;
}

const PropertyValue* find_property(const InstanceModel& model,
                                   const ComponentInstance& inst,
                                   std::string_view lowered_name) {
  const auto matches = [&](const PropertyAssociation& pa) {
    if (util::to_lower(pa.name) == lowered_name) return true;
    const auto pos = pa.name.rfind("::");
    return pos != std::string::npos && pa.name.substr(pos + 2) == lowered_name;
  };

  // 1) Contained associations on ancestors targeting this instance; the
  //    nearest (deepest) declaring ancestor wins.
  for (const ComponentInstance* scope = inst.parent; scope;
       scope = scope->parent) {
    if (!scope->impl) continue;
    for (const PropertyAssociation& pa : scope->impl->properties) {
      if (!matches(pa)) continue;
      for (const auto& target : pa.applies_to) {
        if (scope->resolve(target) == &inst) return &pa.value;
      }
    }
  }
  // 2) Own implementation associations (no applies_to).
  if (inst.impl) {
    for (const PropertyAssociation& pa : inst.impl->properties)
      if (matches(pa) && pa.applies_to.empty()) return &pa.value;
  }
  // 3) Own type associations.
  if (inst.type) {
    for (const PropertyAssociation& pa : inst.type->properties)
      if (matches(pa) && pa.applies_to.empty()) return &pa.value;
  }
  (void)model;
  return nullptr;
}

std::unique_ptr<InstanceModel> instantiate(const Model& model,
                                           std::string_view root_impl,
                                           util::DiagnosticEngine& diags) {
  Instantiator inst(model, diags);
  return inst.run(root_impl);
}

}  // namespace aadlsched::aadl
