// Canonical content hash of an instantiated AADL model.
//
// The analysis service (src/server) memoizes verdicts by model content; for
// that to be useful in the paper's interactive workflow — an editor
// re-submitting the model after every tweak — the key must be *semantic*:
// stable across whitespace, comments and declaration order (all of which
// vanish or are canonicalized here), and sensitive to anything that can
// change the analysis verdict (a period, a priority, a binding, a
// connection, a queue size...).
//
// The fingerprint hashes a canonical text rendering of the *instance*
// model (post parse + instantiate), in which:
//   * component instances appear in sorted path order, with their
//     category and instance path (classifier spellings are dropped — two
//     models with identical instance trees analyze identically);
//   * features are rendered sorted by name;
//   * property associations are the declared ones on each instance's own
//     implementation and type plus contained (`applies to`) associations,
//     deduplicated first-wins per (name, target) — mirroring
//     find_property's resolution order — then sorted;
//   * semantic connections are rendered sorted, without their syntactic
//     connection names (renaming a connection label is cosmetic);
//   * processor bindings are rendered sorted by thread path.
//
// Two independently seeded 64-bit FNV-1a hashes over that text give a
// 128-bit fingerprint; collisions are not a correctness concern at the
// cache sizes involved but 64 bits alone would be uncomfortably small for
// a persistent on-disk store.
#pragma once

#include <cstdint>
#include <string>

#include "aadl/instance.hpp"

namespace aadlsched::aadl {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  /// 32 lowercase hex chars; used as the cache key / disk file name stem.
  std::string hex() const;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// The canonical rendering described above. Exposed for tests (asserting
/// *why* two fingerprints differ beats comparing two opaque hashes) and
/// debugging (`aadlschedd` logs it at high verbosity).
std::string canonical_instance_text(const InstanceModel& model);

/// Hash of canonical_instance_text(model).
Fingerprint instance_fingerprint(const InstanceModel& model);

}  // namespace aadlsched::aadl
