// AADL instantiation: declarative model -> instance model.
//
// Implements the paper's preconditions (§4.1): the system must be
// completely instantiated and bound. Starting from a root system
// implementation we build the component instance tree, resolve *semantic
// connections* (ultimate source -> ultimate destination through the
// component hierarchy, §2), resolve processor bindings
// (Actual_Processor_Binding, inherited by threads from their enclosing
// process) and connection-to-bus bindings (Actual_Connection_Binding).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aadl/ast.hpp"
#include "util/diagnostics.hpp"

namespace aadlsched::aadl {

struct ComponentInstance {
  Category category = Category::System;
  std::string name;  // lowercased subcomponent name ("" for the root)
  std::string path;  // dotted instance path from the root, e.g. "hci.refspeed"
  const ComponentType* type = nullptr;  // may be null (unresolved classifier)
  const ComponentImpl* impl = nullptr;  // may be null (type-only classifier)
  ComponentInstance* parent = nullptr;
  std::vector<std::unique_ptr<ComponentInstance>> children;

  const ComponentInstance* find_child(std::string_view lowered) const;
  ComponentInstance* find_child(std::string_view lowered);
  /// Resolve a dotted path relative to this instance.
  const ComponentInstance* resolve(
      const std::vector<std::string>& path) const;
  bool is_thread_or_device() const {
    return category == Category::Thread || category == Category::Device;
  }
};

/// One fully resolved semantic connection (§2): thread/device ultimate
/// source to thread/device ultimate destination, with the chain of
/// syntactic connections it traverses.
struct SemanticConnection {
  const ComponentInstance* source = nullptr;
  std::string source_port;  // lowercased feature name
  const ComponentInstance* destination = nullptr;
  std::string destination_port;
  FeatureKind kind = FeatureKind::DataPort;
  std::vector<std::string> via;  // names of the syntactic connections
  const ComponentInstance* bus = nullptr;  // Actual_Connection_Binding

  std::string describe() const;
};

struct InstanceModel {
  std::unique_ptr<ComponentInstance> root;
  std::vector<ComponentInstance*> threads;
  std::vector<ComponentInstance*> processors;
  std::vector<ComponentInstance*> buses;
  std::vector<ComponentInstance*> devices;
  std::vector<ComponentInstance*> data_components;
  std::vector<SemanticConnection> connections;
  /// thread instance -> processor instance (paper precondition 1).
  std::map<const ComponentInstance*, const ComponentInstance*> bindings;

  const ComponentInstance* find(std::string_view dotted_path) const;
  /// Threads bound to the given processor.
  std::vector<const ComponentInstance*> threads_on(
      const ComponentInstance* processor) const;
};

/// Property lookup on an instance: nearest enclosing association wins.
/// Searches, in order: `applies to` associations on ancestors whose path
/// matches this instance, then the instance's own implementation and type
/// properties (implementation overrides type). Returns nullptr if absent.
const PropertyValue* find_property(const InstanceModel& model,
                                   const ComponentInstance& inst,
                                   std::string_view lowered_name);

/// Property attached to a semantic connection (searched on the syntactic
/// connections' `applies to` associations along the chain, e.g.
/// Queue_Size / Overflow_Handling_Protocol / Urgency on the last port or
/// connection).
const PropertyValue* find_connection_property(
    const InstanceModel& model, const SemanticConnection& conn,
    std::string_view lowered_name);

/// Instantiate `root_impl` ("type.impl", lowercased or not). Reports
/// structural errors to diags; returns nullptr on fatal failure.
std::unique_ptr<InstanceModel> instantiate(const Model& model,
                                           std::string_view root_impl,
                                           util::DiagnosticEngine& diags);

}  // namespace aadlsched::aadl
