// Typed views over AADL properties: the standard properties the paper's
// translation consumes (§4.1 preconditions), with AADL time units
// normalized to nanoseconds and converted to scheduling quanta by the
// translator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "aadl/instance.hpp"

namespace aadlsched::aadl {

enum class DispatchProtocol : std::uint8_t {
  Periodic,
  Sporadic,
  Aperiodic,
  Background,
};

std::string_view to_string(DispatchProtocol p);

enum class SchedulingProtocol : std::uint8_t {
  RateMonotonic,
  DeadlineMonotonic,
  HighestPriorityFirst,  // fixed priorities from the Priority property
  Edf,
  Llf,
};

std::string_view to_string(SchedulingProtocol p);

enum class OverflowProtocol : std::uint8_t {
  DropNewest,  // AADL DropNewest/DropOldest collapse to "drop" in a counter
  DropOldest,
  Error,
};

/// Timing in nanoseconds (canonical unit for AADL time literals).
struct ThreadProperties {
  DispatchProtocol dispatch = DispatchProtocol::Periodic;
  std::int64_t period_ns = 0;            // Period (also sporadic separation)
  std::int64_t compute_min_ns = 0;       // Compute_Execution_Time range
  std::int64_t compute_max_ns = 0;
  std::int64_t deadline_ns = 0;          // Deadline / Compute_Deadline
  std::optional<int> priority;           // Priority (for HPF scheduling)
};

struct ConnectionProperties {
  int queue_size = 1;  // Queue_Size, default 1 (§4.4)
  OverflowProtocol overflow = OverflowProtocol::DropNewest;
  int urgency = 0;     // Urgency: higher = preferred dequeue
};

/// Convert an AADL time literal to nanoseconds. Unknown units report an
/// error and return nullopt. An empty unit means "quanta" and is accepted
/// as-is only by quantum-relative call sites; here it defaults to ns.
std::optional<std::int64_t> time_to_ns(const IntWithUnit& v,
                                       util::DiagnosticEngine& diags,
                                       util::SourceLoc loc);

/// Extract thread timing/dispatch properties; reports missing mandatory
/// properties (paper §4.1: Dispatch_Protocol, Compute_Execution_Time and a
/// deadline are required; Period is required for periodic/sporadic).
std::optional<ThreadProperties> thread_properties(
    const InstanceModel& model, const ComponentInstance& thread,
    util::DiagnosticEngine& diags);

/// Extract the scheduling protocol of a processor (required when threads
/// are bound to it, §4.1).
std::optional<SchedulingProtocol> scheduling_protocol(
    const InstanceModel& model, const ComponentInstance& processor,
    util::DiagnosticEngine& diags);

/// Queue/overflow/urgency properties of a semantic connection (§4.4).
ConnectionProperties connection_properties(const InstanceModel& model,
                                           const SemanticConnection& conn,
                                           util::DiagnosticEngine& diags);

}  // namespace aadlsched::aadl
