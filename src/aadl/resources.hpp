// Shared-resource view of an instance model: data components reached by
// `data access` connections from threads, with their concurrency-control
// protocol and per-access critical-section bounds.
//
// Access connections are deliberately outside the ACSR translation's scope
// (the explorer walks the lock-free model); this extraction gives the
// static-analysis tier the blocking structure instead. Conventions:
//
//   * `Concurrency_Control_Protocol` on the data component selects the
//     protocol (identifier or string; "…ceiling…" -> priority ceiling,
//     "…inheritance…"/"pip" -> priority inheritance; otherwise none).
//   * `Critical_Section_Time` applied to any syntactic connection on the
//     thread's access chain bounds how long one dispatch holds the lock.
//
// Access chains may pass through `requires/provides data access` features
// of intermediate components; endpoints are joined on (instance, feature)
// identity exactly like the port chaser, but undirected (`<->`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aadl/instance.hpp"

namespace aadlsched::aadl {

enum class ConcurrencyProtocol : std::uint8_t {
  None,
  PriorityInheritance,
  PriorityCeiling,
};

std::string_view to_string(ConcurrencyProtocol p);

struct ResourceAccess {
  const ComponentInstance* thread = nullptr;
  std::string feature;  // thread-side access feature name (lowercased)
  std::vector<std::string> via;  // syntactic connection names on the chain
  /// Critical_Section_Time in nanoseconds; -1 when not specified.
  std::int64_t section_ns = -1;
};

struct SharedResourceInfo {
  const ComponentInstance* data = nullptr;
  ConcurrencyProtocol protocol = ConcurrencyProtocol::None;
  /// Raw Concurrency_Control_Protocol text ("" when absent) for reporting.
  std::string protocol_name;
  /// Did the protocol text fail to parse? (treated as None, AL016 flags it)
  bool protocol_unknown = false;
  std::vector<ResourceAccess> accesses;  // thread endpoints, model order
};

struct SharedResourceModel {
  /// Data components with at least one resolved thread access.
  std::vector<SharedResourceInfo> resources;
  /// Human-readable descriptions of access connections that could not be
  /// resolved to a (thread, data component) pair.
  std::vector<std::string> unresolved;

  bool empty() const { return resources.empty() && unresolved.empty(); }
};

SharedResourceModel extract_shared_resources(const InstanceModel& model);

}  // namespace aadlsched::aadl
