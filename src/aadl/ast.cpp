#include "aadl/ast.hpp"

#include "util/string_utils.hpp"

namespace aadlsched::aadl {

std::string_view to_string(Category c) {
  switch (c) {
    case Category::System: return "system";
    case Category::Process: return "process";
    case Category::ThreadGroup: return "thread group";
    case Category::Thread: return "thread";
    case Category::Processor: return "processor";
    case Category::Bus: return "bus";
    case Category::Device: return "device";
    case Category::Data: return "data";
    case Category::Memory: return "memory";
    case Category::Subprogram: return "subprogram";
  }
  return "unknown";
}

const Feature* ComponentType::find_feature(
    std::string_view lowered_name) const {
  for (const Feature& f : features)
    if (util::to_lower(f.name) == lowered_name) return &f;
  return nullptr;
}

const Subcomponent* ComponentImpl::find_subcomponent(
    std::string_view lowered_name) const {
  for (const Subcomponent& s : subcomponents)
    if (util::to_lower(s.name) == lowered_name) return &s;
  return nullptr;
}

const ComponentType* Model::find_type(std::string_view name) const {
  const std::string lowered_s = util::to_lower(name);
  const std::string_view lowered = lowered_s;
  // Qualified name "pkg::name" or bare name searched across packages.
  const auto pos = lowered.rfind("::");
  if (pos != std::string_view::npos) {
    const auto pkg = packages.find(std::string(lowered.substr(0, pos)));
    if (pkg == packages.end()) return nullptr;
    const auto it = pkg->second.types.find(std::string(lowered.substr(pos + 2)));
    return it == pkg->second.types.end() ? nullptr : &it->second;
  }
  for (const auto& [_, pkg] : packages) {
    const auto it = pkg.types.find(std::string(lowered));
    if (it != pkg.types.end()) return &it->second;
  }
  return nullptr;
}

const ComponentImpl* Model::find_impl(std::string_view name) const {
  const std::string lowered_s = util::to_lower(name);
  const std::string_view lowered = lowered_s;
  const auto pos = lowered.rfind("::");
  if (pos != std::string_view::npos) {
    const auto pkg = packages.find(std::string(lowered.substr(0, pos)));
    if (pkg == packages.end()) return nullptr;
    const auto it = pkg->second.impls.find(std::string(lowered.substr(pos + 2)));
    return it == pkg->second.impls.end() ? nullptr : &it->second;
  }
  for (const auto& [_, pkg] : packages) {
    const auto it = pkg.impls.find(std::string(lowered));
    if (it != pkg.impls.end()) return &it->second;
  }
  return nullptr;
}

}  // namespace aadlsched::aadl
