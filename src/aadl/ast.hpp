// Declarative AST for the AADL textual subset (SAE AS5506) used by the
// paper: packages; thread / process / system / processor / bus / device /
// data / memory component types and implementations; ports and bus access
// features; port connections; subcomponents; property associations with
// units, ranges, references, lists and `applies to`; mode declarations are
// parsed and retained but (exactly like the paper, §4.1) not translated.
//
// AADL identifiers are case-insensitive; the parser preserves the original
// spelling for diagnostics and lowercases for lookup.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/diagnostics.hpp"

namespace aadlsched::aadl {

enum class Category : std::uint8_t {
  System,
  Process,
  ThreadGroup,
  Thread,
  Processor,
  Bus,
  Device,
  Data,
  Memory,
  Subprogram,
};

std::string_view to_string(Category c);

enum class Direction : std::uint8_t { In, Out, InOut };

enum class FeatureKind : std::uint8_t {
  DataPort,
  EventPort,
  EventDataPort,
  BusAccess,     // requires/provides bus access
  DataAccess,    // requires/provides data access
};

struct Feature {
  std::string name;
  Direction direction = Direction::In;
  FeatureKind kind = FeatureKind::DataPort;
  bool provides = false;           // for access features
  std::string classifier;          // optional data/bus classifier reference
  util::SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Property values
// ---------------------------------------------------------------------------

struct PropertyValue;

struct IntWithUnit {
  std::int64_t value = 0;
  std::string unit;  // empty for plain integers

  friend bool operator==(const IntWithUnit&, const IntWithUnit&) = default;
};

struct RangeValue {
  IntWithUnit lo;
  IntWithUnit hi;
};

struct ReferenceValue {
  std::vector<std::string> path;  // dotted instance path, lowercased
};

struct ListValue {
  std::vector<PropertyValue> items;
};

struct PropertyValue {
  std::variant<IntWithUnit, RangeValue, std::string /*identifier/enum*/,
               ReferenceValue, ListValue, double, bool>
      data;

  bool is_int() const { return std::holds_alternative<IntWithUnit>(data); }
  bool is_range() const { return std::holds_alternative<RangeValue>(data); }
  bool is_ident() const { return std::holds_alternative<std::string>(data); }
  bool is_reference() const {
    return std::holds_alternative<ReferenceValue>(data);
  }
  bool is_list() const { return std::holds_alternative<ListValue>(data); }
};

struct PropertyAssociation {
  std::string name;  // lowercased, e.g. "dispatch_protocol"
  PropertyValue value;
  /// `applies to` instance paths (lowercased dotted segments); empty when
  /// the association applies to the enclosing declaration itself.
  std::vector<std::vector<std::string>> applies_to;
  util::SourceLoc loc;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct Subcomponent {
  std::string name;
  Category category = Category::System;
  /// Classifier reference: "type" or "type.impl" (lowercased).
  std::string classifier;
  util::SourceLoc loc;
};

struct ConnectionDecl {
  std::string name;
  /// Declared kind keyword if any (port / data port / event port / ...).
  std::optional<FeatureKind> kind;
  /// Endpoint paths, 1 segment (own feature) or 2 (subcomponent.feature).
  std::vector<std::string> source;
  std::vector<std::string> destination;
  bool bidirectional = false;  // <-> (access connections)
  util::SourceLoc loc;
};

struct ModeDecl {
  std::string name;
  bool initial = false;
};

struct ComponentType {
  Category category = Category::System;
  std::string name;  // lowercased
  std::string display_name;
  std::string extends;  // optional parent type (lowercased), "" if none
  std::vector<Feature> features;
  std::vector<PropertyAssociation> properties;
  util::SourceLoc loc;

  const Feature* find_feature(std::string_view lowered_name) const;
};

struct ComponentImpl {
  Category category = Category::System;
  std::string type_name;  // lowercased type part
  std::string impl_name;  // lowercased "type.impl"
  std::string display_name;
  std::vector<Subcomponent> subcomponents;
  std::vector<ConnectionDecl> connections;
  std::vector<PropertyAssociation> properties;
  std::vector<ModeDecl> modes;
  util::SourceLoc loc;

  const Subcomponent* find_subcomponent(std::string_view lowered_name) const;
};

struct Package {
  std::string name;  // lowercased; may contain "::"
  std::string display_name;
  std::map<std::string, ComponentType> types;       // by lowercased name
  std::map<std::string, ComponentImpl> impls;       // by lowercased impl name
};

/// A parsed model: one or more packages.
struct Model {
  std::map<std::string, Package> packages;

  const ComponentType* find_type(std::string_view name) const;
  const ComponentImpl* find_impl(std::string_view name) const;
};

}  // namespace aadlsched::aadl
