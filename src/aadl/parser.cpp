#include "aadl/parser.hpp"

#include <optional>

#include "aadl/lexer.hpp"
#include "util/string_utils.hpp"

namespace aadlsched::aadl {

namespace {

using util::iequals;
using util::to_lower;

class Parser {
 public:
  Parser(Model& model, std::vector<AadlToken> toks,
         util::DiagnosticEngine& diags)
      : model_(model), toks_(std::move(toks)), diags_(diags) {}

  bool run() {
    while (!at_end()) {
      if (at_kw("package")) {
        parse_package();
      } else {
        error("expected 'package'");
        return false;
      }
    }
    return !diags_.has_errors();
  }

 private:
  // --- token helpers -------------------------------------------------------
  const AadlToken& cur() const { return toks_[i_]; }
  bool at_end() const { return cur().kind == TokKind::End; }
  bool at(TokKind k) const { return cur().kind == k; }
  bool at_kw(std::string_view kw) const {
    return at(TokKind::Ident) && iequals(cur().text, kw);
  }
  AadlToken eat() { return toks_[i_++]; }
  bool accept(TokKind k) {
    if (!at(k)) return false;
    ++i_;
    return true;
  }
  bool accept_kw(std::string_view kw) {
    if (!at_kw(kw)) return false;
    ++i_;
    return true;
  }
  void error(std::string msg) {
    diags_.error(cur().loc, std::move(msg) + " (found '" +
                                std::string(cur().text) + "')");
  }
  bool expect(TokKind k, std::string_view what) {
    if (accept(k)) return true;
    error("expected " + std::string(what));
    return false;
  }
  bool expect_kw(std::string_view kw) {
    if (accept_kw(kw)) return true;
    error("expected '" + std::string(kw) + "'");
    return false;
  }
  /// Error recovery: skip past the next semicolon.
  void sync() {
    while (!at_end() && !accept(TokKind::Semicolon)) ++i_;
  }

  std::optional<std::string> ident() {
    if (!at(TokKind::Ident)) {
      error("expected identifier");
      return std::nullopt;
    }
    return std::string(eat().text);
  }

  /// name or pkg::name (lowercased).
  std::optional<std::string> qualified_name() {
    auto first = ident();
    if (!first) return std::nullopt;
    std::string out = to_lower(*first);
    while (accept(TokKind::ColonColon)) {
      auto seg = ident();
      if (!seg) return std::nullopt;
      out += "::";
      out += to_lower(*seg);
    }
    return out;
  }

  /// Dotted instance path, lowercased segments.
  std::optional<std::vector<std::string>> dotted_path() {
    std::vector<std::string> out;
    auto first = ident();
    if (!first) return std::nullopt;
    out.push_back(to_lower(*first));
    while (accept(TokKind::Dot)) {
      auto seg = ident();
      if (!seg) return std::nullopt;
      out.push_back(to_lower(*seg));
    }
    return out;
  }

  std::optional<Category> category_kw() {
    static constexpr std::pair<std::string_view, Category> kMap[] = {
        {"system", Category::System},       {"process", Category::Process},
        {"thread", Category::Thread},       {"processor", Category::Processor},
        {"bus", Category::Bus},             {"device", Category::Device},
        {"data", Category::Data},           {"memory", Category::Memory},
        {"subprogram", Category::Subprogram},
    };
    for (const auto& [kw, cat] : kMap) {
      if (at_kw(kw)) {
        ++i_;
        if (cat == Category::Thread && at_kw("group")) {
          ++i_;
          return Category::ThreadGroup;
        }
        return cat;
      }
    }
    return std::nullopt;
  }

  // --- package -------------------------------------------------------------
  void parse_package() {
    expect_kw("package");
    auto name = qualified_name();
    if (!name) {
      sync();
      return;
    }
    Package& pkg = model_.packages[*name];
    pkg.name = *name;
    if (pkg.display_name.empty()) pkg.display_name = *name;
    accept_kw("public");

    while (!at_end() && !at_kw("end")) {
      if (accept_kw("private")) continue;
      if (accept_kw("with")) {  // import clause: with pkg, pkg2;
        qualified_name();
        while (accept(TokKind::Comma)) qualified_name();
        expect(TokKind::Semicolon, "';'");
        continue;
      }
      const std::size_t before = i_;
      auto cat = category_kw();
      if (!cat) {
        error("expected component declaration");
        sync();
        continue;
      }
      if (at_kw("implementation")) {
        ++i_;
        parse_impl(pkg, *cat);
      } else {
        parse_type(pkg, *cat);
      }
      if (i_ == before) ++i_;  // safety against infinite loops
    }
    expect_kw("end");
    qualified_name();
    expect(TokKind::Semicolon, "';'");
  }

  // --- component type ------------------------------------------------------
  void parse_type(Package& pkg, Category cat) {
    ComponentType ct;
    ct.category = cat;
    ct.loc = cur().loc;
    auto name = ident();
    if (!name) {
      sync();
      return;
    }
    ct.display_name = *name;
    ct.name = to_lower(*name);
    if (accept_kw("extends")) {
      auto parent = qualified_name();
      if (parent) ct.extends = *parent;
    }
    while (!at_end() && !at_kw("end")) {
      if (accept_kw("features")) {
        while (!at_end() && !at_kw("end") && !at_kw("properties") &&
               !at_kw("flows") && !at_kw("modes") && !at_kw("annex"))
          parse_feature(ct);
      } else if (accept_kw("properties")) {
        while (!at_end() && !at_kw("end") && !at_kw("annex"))
          parse_property(ct.properties);
      } else if (accept_kw("flows") || accept_kw("modes") ||
                 accept_kw("annex")) {
        // Unsupported sections are skipped declaration by declaration.
        while (!at_end() && !at_kw("end") && !at_kw("properties") &&
               !at_kw("features"))
          sync();
      } else if (accept_kw("none")) {
        expect(TokKind::Semicolon, "';'");
      } else {
        error("unexpected token in component type");
        sync();
      }
    }
    expect_kw("end");
    ident();
    expect(TokKind::Semicolon, "';'");
    pkg.types[ct.name] = std::move(ct);
  }

  void parse_feature(ComponentType& ct) {
    if (accept_kw("none")) {
      expect(TokKind::Semicolon, "';'");
      return;
    }
    Feature f;
    f.loc = cur().loc;
    auto name = ident();
    if (!name || !expect(TokKind::Colon, "':'")) {
      sync();
      return;
    }
    f.name = *name;

    if (accept_kw("requires") || at_kw("provides")) {
      f.provides = accept_kw("provides");
      if (accept_kw("bus"))
        f.kind = FeatureKind::BusAccess;
      else if (accept_kw("data"))
        f.kind = FeatureKind::DataAccess;
      else {
        error("expected 'bus' or 'data' after requires/provides");
        sync();
        return;
      }
      if (!expect_kw("access")) {
        sync();
        return;
      }
      if (at(TokKind::Ident)) {
        auto cls = qualified_name();
        if (cls) f.classifier = *cls;
      }
      expect(TokKind::Semicolon, "';'");
      ct.features.push_back(std::move(f));
      return;
    }

    if (accept_kw("in")) {
      f.direction = accept_kw("out") ? Direction::InOut : Direction::In;
    } else if (accept_kw("out")) {
      f.direction = Direction::Out;
    } else {
      error("expected 'in' or 'out'");
      sync();
      return;
    }
    const bool is_event = accept_kw("event");
    const bool is_data = accept_kw("data");
    if (!expect_kw("port")) {
      sync();
      return;
    }
    f.kind = is_event ? (is_data ? FeatureKind::EventDataPort
                                 : FeatureKind::EventPort)
                      : FeatureKind::DataPort;
    if (at(TokKind::Ident)) {
      auto cls = qualified_name();
      if (cls) f.classifier = *cls;
      // Optional dotted implementation part of the classifier.
      if (accept(TokKind::Dot)) ident();
    }
    // Optional property block on the feature: { Prop => V; ... }
    if (accept(TokKind::LBrace)) {
      while (!at_end() && !accept(TokKind::RBrace)) {
        std::vector<PropertyAssociation> props;
        parse_property(props);
        for (auto& p : props) {
          p.applies_to.push_back({to_lower(f.name)});
          ct.properties.push_back(std::move(p));
        }
      }
    }
    expect(TokKind::Semicolon, "';'");
    ct.features.push_back(std::move(f));
  }

  // --- component implementation -------------------------------------------
  void parse_impl(Package& pkg, Category cat) {
    ComponentImpl im;
    im.category = cat;
    im.loc = cur().loc;
    auto tname = ident();
    if (!tname || !expect(TokKind::Dot, "'.'")) {
      sync();
      return;
    }
    auto iname = ident();
    if (!iname) {
      sync();
      return;
    }
    im.type_name = to_lower(*tname);
    im.impl_name = im.type_name + "." + to_lower(*iname);
    im.display_name = *tname + "." + *iname;

    while (!at_end() && !at_kw("end")) {
      if (accept_kw("subcomponents")) {
        while (!at_end() && !at_section_start()) parse_subcomponent(im);
      } else if (accept_kw("connections")) {
        while (!at_end() && !at_section_start()) parse_connection(im);
      } else if (accept_kw("properties")) {
        while (!at_end() && !at_section_start()) parse_property(im.properties);
      } else if (accept_kw("modes")) {
        while (!at_end() && !at_section_start()) parse_mode(im);
      } else if (accept_kw("calls") || accept_kw("flows") ||
                 accept_kw("annex")) {
        while (!at_end() && !at_section_start()) sync();
      } else if (accept_kw("none")) {
        expect(TokKind::Semicolon, "';'");
      } else {
        error("unexpected token in component implementation");
        sync();
      }
    }
    expect_kw("end");
    ident();
    if (accept(TokKind::Dot)) ident();
    expect(TokKind::Semicolon, "';'");
    pkg.impls[im.impl_name] = std::move(im);
  }

  bool at_section_start() const {
    return at_kw("end") || at_kw("subcomponents") || at_kw("connections") ||
           at_kw("properties") || at_kw("modes") || at_kw("calls") ||
           at_kw("flows") || at_kw("annex");
  }

  void parse_subcomponent(ComponentImpl& im) {
    if (accept_kw("none")) {
      expect(TokKind::Semicolon, "';'");
      return;
    }
    Subcomponent sc;
    sc.loc = cur().loc;
    auto name = ident();
    if (!name || !expect(TokKind::Colon, "':'")) {
      sync();
      return;
    }
    sc.name = to_lower(*name);
    auto cat = category_kw();
    if (!cat) {
      error("expected component category");
      sync();
      return;
    }
    sc.category = *cat;
    if (at(TokKind::Ident)) {
      auto cls = qualified_name();
      if (!cls) {
        sync();
        return;
      }
      sc.classifier = *cls;
      if (accept(TokKind::Dot)) {
        auto impl = ident();
        if (impl) sc.classifier += "." + to_lower(*impl);
      }
    }
    // Optional "in modes (...)" — parsed and ignored (paper §4: modes are
    // out of scope for the translation).
    if (accept_kw("in")) {
      expect_kw("modes");
      if (accept(TokKind::LParen)) {
        while (!at_end() && !accept(TokKind::RParen)) ++i_;
      }
    }
    expect(TokKind::Semicolon, "';'");
    im.subcomponents.push_back(std::move(sc));
  }

  void parse_connection(ComponentImpl& im) {
    if (accept_kw("none")) {
      expect(TokKind::Semicolon, "';'");
      return;
    }
    ConnectionDecl cd;
    cd.loc = cur().loc;
    auto name = ident();
    if (!name || !expect(TokKind::Colon, "':'")) {
      sync();
      return;
    }
    cd.name = to_lower(*name);
    // Optional connection-kind keywords.
    if (accept_kw("port")) {
      cd.kind = std::nullopt;  // generic port connection
    } else if (at_kw("event") || at_kw("data") || at_kw("bus")) {
      const bool ev = accept_kw("event");
      const bool bus = !ev && accept_kw("bus");
      const bool data = accept_kw("data");
      if (bus) {
        expect_kw("access");
        cd.kind = FeatureKind::BusAccess;
      } else if (ev) {
        if (data) {
          expect_kw("port");
          cd.kind = FeatureKind::EventDataPort;
        } else {
          expect_kw("port");
          cd.kind = FeatureKind::EventPort;
        }
      } else if (data) {
        if (accept_kw("access"))
          cd.kind = FeatureKind::DataAccess;
        else {
          expect_kw("port");
          cd.kind = FeatureKind::DataPort;
        }
      }
    }
    auto src = dotted_path();
    if (!src) {
      sync();
      return;
    }
    cd.source = *src;
    if (accept(TokKind::Arrow)) {
      cd.bidirectional = false;
    } else if (accept(TokKind::BiArrow)) {
      cd.bidirectional = true;
    } else {
      error("expected '->' or '<->'");
      sync();
      return;
    }
    auto dst = dotted_path();
    if (!dst) {
      sync();
      return;
    }
    cd.destination = *dst;
    if (accept_kw("in")) {
      expect_kw("modes");
      if (accept(TokKind::LParen)) {
        while (!at_end() && !accept(TokKind::RParen)) ++i_;
      }
    }
    // Optional property block: { Prop => V; ... }
    if (accept(TokKind::LBrace)) {
      while (!at_end() && !accept(TokKind::RBrace)) {
        std::vector<PropertyAssociation> props;
        parse_property(props);
        for (auto& p : props) {
          p.applies_to.push_back({cd.name});
          im.properties.push_back(std::move(p));
        }
      }
    }
    expect(TokKind::Semicolon, "';'");
    im.connections.push_back(std::move(cd));
  }

  void parse_mode(ComponentImpl& im) {
    if (accept_kw("none")) {
      expect(TokKind::Semicolon, "';'");
      return;
    }
    // mode decl: name : [initial] mode ;   transition: src -[...]-> dst ;
    // We keep declarations, and skip transitions (modes are not translated).
    auto name = ident();
    if (!name) {
      sync();
      return;
    }
    if (accept(TokKind::Colon)) {
      ModeDecl md;
      md.name = to_lower(*name);
      md.initial = accept_kw("initial");
      expect_kw("mode");
      expect(TokKind::Semicolon, "';'");
      im.modes.push_back(std::move(md));
    } else {
      sync();  // a transition or something else mode-related
    }
  }

  // --- properties ----------------------------------------------------------
  void parse_property(std::vector<PropertyAssociation>& out) {
    if (accept_kw("none")) {
      expect(TokKind::Semicolon, "';'");
      return;
    }
    PropertyAssociation pa;
    pa.loc = cur().loc;
    auto name = qualified_name();
    if (!name) {
      sync();
      return;
    }
    pa.name = *name;
    if (!accept(TokKind::Assoc) && !accept(TokKind::AppendAssoc)) {
      error("expected '=>'");
      sync();
      return;
    }
    auto value = parse_property_value();
    if (!value) {
      sync();
      return;
    }
    pa.value = std::move(*value);
    if (accept_kw("applies")) {
      if (!expect_kw("to")) {
        sync();
        return;
      }
      do {
        auto path = dotted_path();
        if (!path) {
          sync();
          return;
        }
        pa.applies_to.push_back(std::move(*path));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::Semicolon, "';'");
    out.push_back(std::move(pa));
  }

  std::optional<PropertyValue> parse_property_value() {
    auto first = parse_property_atom();
    if (!first) return std::nullopt;
    if (accept(TokKind::DotDot)) {
      auto second = parse_property_atom();
      if (!second) return std::nullopt;
      if (!first->is_int() || !second->is_int()) {
        error("range bounds must be numeric");
        return std::nullopt;
      }
      PropertyValue pv;
      pv.data = RangeValue{std::get<IntWithUnit>(first->data),
                           std::get<IntWithUnit>(second->data)};
      return pv;
    }
    return first;
  }

  std::optional<PropertyValue> parse_property_atom() {
    PropertyValue pv;
    if (at(TokKind::Integer) || at(TokKind::Minus)) {
      const bool neg = accept(TokKind::Minus);
      if (!at(TokKind::Integer)) {
        error("expected integer");
        return std::nullopt;
      }
      IntWithUnit iu;
      iu.value = eat().int_value;
      if (neg) iu.value = -iu.value;
      if (at(TokKind::Ident) && !at_kw("applies")) {
        iu.unit = to_lower(std::string(eat().text));
      }
      pv.data = iu;
      return pv;
    }
    if (at(TokKind::Real)) {
      pv.data = eat().real_value;
      // Skip an optional unit on reals.
      if (at(TokKind::Ident) && !at_kw("applies")) eat();
      return pv;
    }
    if (at(TokKind::String)) {
      const auto t = eat();
      std::string s(t.text);
      if (s.size() >= 2) s = s.substr(1, s.size() - 2);
      pv.data = s;
      return pv;
    }
    if (at_kw("true") || at_kw("false")) {
      pv.data = accept_kw("true") ? true : (accept_kw("false"), false);
      return pv;
    }
    if (at_kw("reference")) {
      ++i_;
      if (!expect(TokKind::LParen, "'('")) return std::nullopt;
      auto path = dotted_path();
      if (!path || !expect(TokKind::RParen, "')'")) return std::nullopt;
      pv.data = ReferenceValue{std::move(*path)};
      return pv;
    }
    if (at(TokKind::LParen)) {
      ++i_;
      ListValue list;
      if (!at(TokKind::RParen)) {
        do {
          auto item = parse_property_value();
          if (!item) return std::nullopt;
          list.items.push_back(std::move(*item));
        } while (accept(TokKind::Comma));
      }
      if (!expect(TokKind::RParen, "')'")) return std::nullopt;
      // A single-element parenthesized value is just that value (OSATE
      // writes "(reference (cpu))" for unary binding lists).
      if (list.items.size() == 1) return std::move(list.items[0]);
      pv.data = std::move(list);
      return pv;
    }
    if (at(TokKind::Ident)) {
      auto q = qualified_name();
      if (!q) return std::nullopt;
      pv.data = *q;
      return pv;
    }
    error("expected property value");
    return std::nullopt;
  }

  Model& model_;
  std::vector<AadlToken> toks_;
  util::DiagnosticEngine& diags_;
  std::size_t i_ = 0;
};

}  // namespace

bool parse_aadl(Model& model, std::string_view source,
                util::DiagnosticEngine& diags) {
  Parser p(model, lex(source, diags), diags);
  return p.run();
}

}  // namespace aadlsched::aadl
