#include "aadl/resources.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <variant>

#include "aadl/properties.hpp"
#include "util/string_utils.hpp"

namespace aadlsched::aadl {

std::string_view to_string(ConcurrencyProtocol p) {
  switch (p) {
    case ConcurrencyProtocol::None: return "none";
    case ConcurrencyProtocol::PriorityInheritance:
      return "priority_inheritance";
    case ConcurrencyProtocol::PriorityCeiling: return "priority_ceiling";
  }
  return "?";
}

namespace {

/// Join point of an access chain: a data/thread endpoint or a pass-through
/// `data access` feature of an intermediate component. The same feature is
/// (sub, name) both from the enclosing implementation and from inside sub's
/// own implementation, so chains join on node identity with no extra logic.
struct Node {
  const ComponentInstance* inst = nullptr;
  std::string port;

  bool operator<(const Node& o) const {
    return inst != o.inst ? inst < o.inst : port < o.port;
  }
  bool operator==(const Node& o) const = default;
};

struct AccessEdge {
  Node a, b;
  std::string name;  // syntactic connection name (lowercased by the parser)
};

/// Resolve one endpoint of an access connection declared in `ctx`. A data
/// component is canonicalized to (data, "") whichever of its features the
/// connection names.
std::optional<Node> resolve_access_endpoint(
    const ComponentInstance* ctx, const std::vector<std::string>& path) {
  if (path.size() == 1) {
    if (const ComponentInstance* child = ctx->find_child(path[0])) {
      if (child->category == Category::Data) return Node{child, ""};
    }
    return Node{ctx, path[0]};
  }
  if (path.size() == 2) {
    const ComponentInstance* child = ctx->find_child(path[0]);
    if (!child) return std::nullopt;
    if (child->category == Category::Data) return Node{child, ""};
    return Node{child, path[1]};
  }
  return std::nullopt;
}

void collect_access_edges(const ComponentInstance* inst,
                          std::vector<AccessEdge>& edges,
                          std::vector<std::string>& unresolved) {
  if (inst->impl) {
    for (const ConnectionDecl& cd : inst->impl->connections) {
      if (cd.kind != FeatureKind::DataAccess) continue;
      auto a = resolve_access_endpoint(inst, cd.source);
      auto b = resolve_access_endpoint(inst, cd.destination);
      if (!a || !b) {
        unresolved.push_back(
            "access connection '" + cd.name + "' in '" +
            (inst->path.empty() ? "<root>" : inst->path) +
            "' has an endpoint that does not resolve");
        continue;
      }
      edges.push_back(AccessEdge{*a, *b, cd.name});
    }
  }
  for (const auto& c : inst->children) collect_access_edges(c.get(), edges,
                                                            unresolved);
}

ConcurrencyProtocol parse_protocol(const std::string& lowered, bool& unknown) {
  unknown = false;
  if (lowered.empty() || lowered == "none_specified" || lowered == "none")
    return ConcurrencyProtocol::None;
  if (lowered.find("ceiling") != std::string::npos)
    return ConcurrencyProtocol::PriorityCeiling;
  if (lowered.find("inherit") != std::string::npos || lowered == "pip")
    return ConcurrencyProtocol::PriorityInheritance;
  unknown = true;
  return ConcurrencyProtocol::None;
}

/// Critical_Section_Time applied (in any implementation scope) to one of
/// the chain's syntactic connection names; mirrors find_connection_property.
std::int64_t section_time_ns(const InstanceModel& model,
                             const std::vector<std::string>& via) {
  struct Walker {
    const std::vector<std::string>& via;
    std::int64_t found = -1;

    void visit(const ComponentInstance* inst) {
      if (found >= 0) return;
      if (inst->impl) {
        for (const PropertyAssociation& pa : inst->impl->properties) {
          std::string name = util::to_lower(pa.name);
          const auto pos = name.rfind("::");
          if (pos != std::string::npos) name = name.substr(pos + 2);
          if (name != "critical_section_time") continue;
          for (const auto& t : pa.applies_to) {
            if (t.size() != 1) continue;
            if (std::find(via.begin(), via.end(), t[0]) == via.end())
              continue;
            if (const auto* iu = std::get_if<IntWithUnit>(&pa.value.data)) {
              util::DiagnosticEngine scratch("<resources>");
              if (auto ns = time_to_ns(*iu, scratch, pa.loc)) {
                found = *ns;
                return;
              }
            }
          }
        }
      }
      for (const auto& c : inst->children) visit(c.get());
    }
  };
  Walker w{via};
  if (model.root) w.visit(model.root.get());
  return w.found;
}

}  // namespace

SharedResourceModel extract_shared_resources(const InstanceModel& model) {
  SharedResourceModel out;
  std::vector<AccessEdge> edges;
  collect_access_edges(model.root.get(), edges, out.unresolved);
  if (edges.empty()) return out;

  std::map<Node, std::vector<const AccessEdge*>> adj;
  for (const AccessEdge& e : edges) {
    adj[e.a].push_back(&e);
    adj[e.b].push_back(&e);
  }

  std::set<const AccessEdge*> reached_from_data;
  for (const ComponentInstance* data : model.data_components) {
    const Node root{data, ""};
    if (!adj.count(root)) continue;

    // BFS over the undirected access graph, remembering the edge that first
    // reached each node so a thread's chain of connection names (`via`) can
    // be reconstructed for the Critical_Section_Time lookup.
    std::map<Node, std::pair<Node, const AccessEdge*>> parent;
    std::deque<Node> work{root};
    std::set<Node> visited{root};
    SharedResourceInfo info;
    info.data = data;
    while (!work.empty()) {
      const Node at = work.front();
      work.pop_front();
      auto it = adj.find(at);
      if (it == adj.end()) continue;
      for (const AccessEdge* e : it->second) {
        reached_from_data.insert(e);
        const Node next = e->a == at ? e->b : e->a;
        if (!visited.insert(next).second) continue;
        parent[next] = {at, e};
        if (next.inst->category == Category::Thread) {
          ResourceAccess acc;
          acc.thread = next.inst;
          acc.feature = next.port;
          for (Node n = next; n != root;) {
            const auto& [prev, via_edge] = parent.at(n);
            acc.via.push_back(via_edge->name);
            n = prev;
          }
          std::reverse(acc.via.begin(), acc.via.end());
          acc.section_ns = section_time_ns(model, acc.via);
          info.accesses.push_back(std::move(acc));
        } else {
          work.push_back(next);  // pass-through feature; keep chaining
        }
      }
    }
    if (info.accesses.empty()) {
      out.unresolved.push_back("data component '" + data->path +
                               "' has access connections but no resolvable "
                               "thread access");
      continue;
    }
    // Deterministic order: model.threads order, then feature name.
    std::map<const ComponentInstance*, std::size_t> order;
    for (std::size_t i = 0; i < model.threads.size(); ++i)
      order[model.threads[i]] = i;
    std::stable_sort(info.accesses.begin(), info.accesses.end(),
                     [&](const ResourceAccess& x, const ResourceAccess& y) {
                       const auto ox = order.count(x.thread)
                                           ? order.at(x.thread)
                                           : order.size();
                       const auto oy = order.count(y.thread)
                                           ? order.at(y.thread)
                                           : order.size();
                       return ox != oy ? ox < oy : x.feature < y.feature;
                     });
    if (const PropertyValue* pv = find_property(
            model, *data, "concurrency_control_protocol")) {
      if (const auto* s = std::get_if<std::string>(&pv->data)) {
        info.protocol_name = util::to_lower(*s);
        info.protocol = parse_protocol(info.protocol_name,
                                       info.protocol_unknown);
      }
    }
    out.resources.push_back(std::move(info));
  }

  for (const AccessEdge& e : edges)
    if (!reached_from_data.count(&e))
      out.unresolved.push_back("access connection '" + e.name +
                               "' does not reach a data component");
  return out;
}

}  // namespace aadlsched::aadl
