#include "aadl/fingerprint.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string_view>

#include "aadl/resources.hpp"
#include "util/hash.hpp"
#include "util/string_utils.hpp"

namespace aadlsched::aadl {

namespace {

std::string_view direction_tag(Direction d) {
  switch (d) {
    case Direction::In: return "in";
    case Direction::Out: return "out";
    case Direction::InOut: return "inout";
  }
  return "?";
}

std::string_view feature_kind_tag(FeatureKind k) {
  switch (k) {
    case FeatureKind::DataPort: return "data";
    case FeatureKind::EventPort: return "event";
    case FeatureKind::EventDataPort: return "eventdata";
    case FeatureKind::BusAccess: return "busaccess";
    case FeatureKind::DataAccess: return "dataaccess";
  }
  return "?";
}

void render_value(std::ostream& os, const PropertyValue& v);

void render_int(std::ostream& os, const IntWithUnit& v) {
  os << v.value;
  if (!v.unit.empty()) os << ' ' << util::to_lower(v.unit);
}

void render_value(std::ostream& os, const PropertyValue& v) {
  if (const auto* i = std::get_if<IntWithUnit>(&v.data)) {
    render_int(os, *i);
  } else if (const auto* r = std::get_if<RangeValue>(&v.data)) {
    render_int(os, r->lo);
    os << " .. ";
    render_int(os, r->hi);
  } else if (const auto* s = std::get_if<std::string>(&v.data)) {
    // AADL identifiers/enums are case-insensitive; fold so RATE_MONOTONIC
    // and Rate_Monotonic fingerprint identically.
    os << util::to_lower(*s);
  } else if (const auto* ref = std::get_if<ReferenceValue>(&v.data)) {
    os << "ref(" << util::join(ref->path, ".") << ')';
  } else if (const auto* list = std::get_if<ListValue>(&v.data)) {
    os << '(';  // list order is semantic (e.g. binding lists) — preserved
    for (std::size_t i = 0; i < list->items.size(); ++i) {
      if (i) os << ", ";
      render_value(os, list->items[i]);
    }
    os << ')';
  } else if (const auto* d = std::get_if<double>(&v.data)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", *d);
    os << buf;
  } else if (const auto* b = std::get_if<bool>(&v.data)) {
    os << (*b ? "true" : "false");
  }
}

/// Render one declared property list, mirroring find_property's
/// first-match-wins resolution: a later association that repeats an earlier
/// (name, applies-to target) is unreachable and must not perturb the hash.
/// The reachable survivors are then sorted, so re-ordering *distinct*
/// associations — a pure layout edit — is invisible.
void render_properties(std::ostream& os,
                       const std::vector<PropertyAssociation>& props) {
  std::set<std::string> seen;  // dedup keys, first wins
  std::vector<std::string> lines;
  for (const PropertyAssociation& pa : props) {
    const std::string name = util::to_lower(pa.name);
    std::ostringstream val;
    render_value(val, pa.value);
    if (pa.applies_to.empty()) {
      if (!seen.insert(name).second) continue;
      lines.push_back("  prop " + name + " = " + val.str());
      continue;
    }
    for (const auto& target : pa.applies_to) {
      const std::string tpath = util::join(target, ".");
      if (!seen.insert(name + " @ " + tpath).second) continue;
      lines.push_back("  prop " + name + " @ " + tpath + " = " + val.str());
    }
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& l : lines) os << l << '\n';
}

void render_component(std::ostream& os, const ComponentInstance& inst) {
  os << "component " << to_string(inst.category) << " \"" << inst.path
     << "\"\n";
  if (inst.type) {
    std::vector<std::string> feats;
    for (const Feature& f : inst.type->features) {
      std::ostringstream fs;
      fs << "  feature " << util::to_lower(f.name) << ' '
         << direction_tag(f.direction) << ' ' << feature_kind_tag(f.kind);
      if (f.provides) fs << " provides";
      if (!f.classifier.empty()) fs << ' ' << util::to_lower(f.classifier);
      feats.push_back(fs.str());
    }
    std::sort(feats.begin(), feats.end());
    for (const std::string& f : feats) os << f << '\n';
    render_properties(os, inst.type->properties);
  }
  if (inst.impl) render_properties(os, inst.impl->properties);
}

}  // namespace

std::string Fingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::string canonical_instance_text(const InstanceModel& model) {
  std::ostringstream os;
  os << "aadlsched-instance-v1\n";

  // Component instances in sorted path order. The tree shape is implied by
  // the dotted paths, so a flat sorted listing is canonical.
  std::vector<const ComponentInstance*> all;
  const auto collect = [&](const ComponentInstance& inst, auto&& self) -> void {
    all.push_back(&inst);
    for (const auto& child : inst.children) self(*child, self);
  };
  if (model.root) collect(*model.root, collect);
  std::sort(all.begin(), all.end(),
            [](const ComponentInstance* a, const ComponentInstance* b) {
              return a->path < b->path;
            });
  for (const ComponentInstance* inst : all) render_component(os, *inst);

  // Semantic connections, sorted; the syntactic `via` chain is a naming
  // artifact and deliberately excluded.
  std::vector<std::string> conns;
  for (const SemanticConnection& c : model.connections) {
    std::ostringstream cs;
    cs << "connection " << feature_kind_tag(c.kind) << " \""
       << (c.source ? c.source->path : "?") << '.' << c.source_port
       << "\" -> \"" << (c.destination ? c.destination->path : "?") << '.'
       << c.destination_port << '"';
    if (c.bus) cs << " bus \"" << c.bus->path << '"';
    conns.push_back(cs.str());
  }
  std::sort(conns.begin(), conns.end());
  for (const std::string& c : conns) os << c << '\n';

  // Shared-resource accesses (data access connections are not semantic
  // connections, but the static-analysis tier reads them, so they must
  // invalidate cached results). Models without access connections emit
  // nothing here and keep their pre-existing fingerprints.
  const SharedResourceModel srm = extract_shared_resources(model);
  std::vector<std::string> accs;
  for (const SharedResourceInfo& res : srm.resources) {
    for (const ResourceAccess& a : res.accesses) {
      std::ostringstream as;
      as << "access \"" << (a.thread ? a.thread->path : "?") << '.'
         << a.feature << "\" -> \"" << res.data->path << "\" protocol "
         << to_string(res.protocol) << " section " << a.section_ns;
      accs.push_back(as.str());
    }
  }
  for (const std::string& u : srm.unresolved)
    accs.push_back("access-unresolved \"" + u + '"');
  std::sort(accs.begin(), accs.end());
  for (const std::string& a : accs) os << a << '\n';

  // Processor bindings, sorted by thread path.
  std::vector<std::string> binds;
  for (const auto& [thread, proc] : model.bindings) {
    binds.push_back("binding \"" + thread->path + "\" -> \"" + proc->path +
                    "\"");
  }
  std::sort(binds.begin(), binds.end());
  for (const std::string& b : binds) os << b << '\n';

  return os.str();
}

Fingerprint instance_fingerprint(const InstanceModel& model) {
  const std::string text = canonical_instance_text(model);
  Fingerprint fp;
  fp.hi = util::fnv1a(text);
  fp.lo = util::fnv1a(text, 0x9ae16a3b2f90404fULL);
  return fp;
}

}  // namespace aadlsched::aadl
