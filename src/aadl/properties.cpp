#include "aadl/properties.hpp"

#include "util/string_utils.hpp"

namespace aadlsched::aadl {

std::string_view to_string(DispatchProtocol p) {
  switch (p) {
    case DispatchProtocol::Periodic: return "Periodic";
    case DispatchProtocol::Sporadic: return "Sporadic";
    case DispatchProtocol::Aperiodic: return "Aperiodic";
    case DispatchProtocol::Background: return "Background";
  }
  return "?";
}

std::string_view to_string(SchedulingProtocol p) {
  switch (p) {
    case SchedulingProtocol::RateMonotonic: return "RATE_MONOTONIC_PROTOCOL";
    case SchedulingProtocol::DeadlineMonotonic:
      return "DEADLINE_MONOTONIC_PROTOCOL";
    case SchedulingProtocol::HighestPriorityFirst:
      return "HPF_PROTOCOL";
    case SchedulingProtocol::Edf: return "EDF_PROTOCOL";
    case SchedulingProtocol::Llf: return "LLF_PROTOCOL";
  }
  return "?";
}

std::optional<std::int64_t> time_to_ns(const IntWithUnit& v,
                                       util::DiagnosticEngine& diags,
                                       util::SourceLoc loc) {
  const std::string unit = util::to_lower(v.unit);
  std::int64_t scale = 0;
  if (unit.empty() || unit == "ns")
    scale = 1;
  else if (unit == "us")
    scale = 1'000;
  else if (unit == "ms")
    scale = 1'000'000;
  else if (unit == "sec" || unit == "s")
    scale = 1'000'000'000;
  else if (unit == "min")
    scale = 60LL * 1'000'000'000;
  else if (unit == "hr")
    scale = 3600LL * 1'000'000'000;
  else if (unit == "ps") {
    // Sub-nanosecond: round to nanoseconds.
    return v.value / 1000;
  } else {
    diags.error(loc, "unknown time unit '" + v.unit + "'");
    return std::nullopt;
  }
  return v.value * scale;
}

namespace {

std::optional<std::int64_t> time_property(const InstanceModel& model,
                                          const ComponentInstance& inst,
                                          std::string_view name,
                                          util::DiagnosticEngine& diags) {
  const PropertyValue* pv = find_property(model, inst, name);
  if (!pv) return std::nullopt;
  if (const auto* iu = std::get_if<IntWithUnit>(&pv->data))
    return time_to_ns(*iu, diags, {});
  diags.error({}, std::string(name) + " of '" + inst.path +
                      "' is not a time value");
  return std::nullopt;
}

std::optional<std::pair<std::int64_t, std::int64_t>> time_range_property(
    const InstanceModel& model, const ComponentInstance& inst,
    std::string_view name, util::DiagnosticEngine& diags) {
  const PropertyValue* pv = find_property(model, inst, name);
  if (!pv) return std::nullopt;
  if (const auto* r = std::get_if<RangeValue>(&pv->data)) {
    const auto lo = time_to_ns(r->lo, diags, {});
    const auto hi = time_to_ns(r->hi, diags, {});
    if (!lo || !hi) return std::nullopt;
    return std::make_pair(*lo, *hi);
  }
  if (const auto* iu = std::get_if<IntWithUnit>(&pv->data)) {
    const auto v = time_to_ns(*iu, diags, {});
    if (!v) return std::nullopt;
    return std::make_pair(*v, *v);
  }
  diags.error({}, std::string(name) + " of '" + inst.path +
                      "' is not a time or time range");
  return std::nullopt;
}

}  // namespace

std::optional<ThreadProperties> thread_properties(
    const InstanceModel& model, const ComponentInstance& thread,
    util::DiagnosticEngine& diags) {
  ThreadProperties tp;

  const PropertyValue* dp =
      find_property(model, thread, "dispatch_protocol");
  if (!dp) {
    diags.error({}, "thread '" + thread.path +
                        "' is missing Dispatch_Protocol (required, §4.1)");
    return std::nullopt;
  }
  const auto* proto = std::get_if<std::string>(&dp->data);
  if (!proto) {
    diags.error({}, "Dispatch_Protocol of '" + thread.path +
                        "' must be an identifier");
    return std::nullopt;
  }
  if (util::iequals(*proto, "periodic"))
    tp.dispatch = DispatchProtocol::Periodic;
  else if (util::iequals(*proto, "sporadic"))
    tp.dispatch = DispatchProtocol::Sporadic;
  else if (util::iequals(*proto, "aperiodic"))
    tp.dispatch = DispatchProtocol::Aperiodic;
  else if (util::iequals(*proto, "background"))
    tp.dispatch = DispatchProtocol::Background;
  else {
    diags.error({}, "unsupported Dispatch_Protocol '" + *proto + "' on '" +
                        thread.path + "'");
    return std::nullopt;
  }

  const auto cet =
      time_range_property(model, thread, "compute_execution_time", diags);
  if (!cet) {
    diags.error({}, "thread '" + thread.path +
                        "' is missing Compute_Execution_Time (required)");
    return std::nullopt;
  }
  tp.compute_min_ns = cet->first;
  tp.compute_max_ns = cet->second;
  if (tp.compute_min_ns > tp.compute_max_ns) {
    diags.error({}, "Compute_Execution_Time of '" + thread.path +
                        "' has min > max");
    return std::nullopt;
  }

  // Deadline: Compute_Deadline wins over Deadline; default for periodic
  // threads is the period.
  auto dl = time_property(model, thread, "compute_deadline", diags);
  if (!dl) dl = time_property(model, thread, "deadline", diags);

  if (tp.dispatch == DispatchProtocol::Periodic ||
      tp.dispatch == DispatchProtocol::Sporadic) {
    const auto period = time_property(model, thread, "period", diags);
    if (!period) {
      diags.error({}, "thread '" + thread.path +
                          "' is missing Period (required for " +
                          std::string(to_string(tp.dispatch)) + ")");
      return std::nullopt;
    }
    tp.period_ns = *period;
    if (!dl) dl = tp.period_ns;  // implicit deadline
  }
  if (tp.dispatch == DispatchProtocol::Aperiodic && !dl) {
    diags.error({}, "aperiodic thread '" + thread.path +
                        "' is missing Deadline/Compute_Deadline (required)");
    return std::nullopt;
  }
  tp.deadline_ns = dl.value_or(0);  // 0 = none (background)

  if (const PropertyValue* prio = find_property(model, thread, "priority")) {
    if (const auto* iu = std::get_if<IntWithUnit>(&prio->data))
      tp.priority = static_cast<int>(iu->value);
  }
  return tp;
}

std::optional<SchedulingProtocol> scheduling_protocol(
    const InstanceModel& model, const ComponentInstance& processor,
    util::DiagnosticEngine& diags) {
  const PropertyValue* pv =
      find_property(model, processor, "scheduling_protocol");
  if (!pv) {
    diags.error({}, "processor '" + processor.path +
                        "' is missing Scheduling_Protocol (required when "
                        "threads are bound to it, §4.1)");
    return std::nullopt;
  }
  const std::string* name = std::get_if<std::string>(&pv->data);
  if (!name) {
    diags.error({}, "Scheduling_Protocol of '" + processor.path +
                        "' must be an identifier");
    return std::nullopt;
  }
  const std::string n = util::to_lower(*name);
  if (n.find("rate_monotonic") != std::string::npos || n == "rms" ||
      n == "rm")
    return SchedulingProtocol::RateMonotonic;
  if (n.find("deadline_monotonic") != std::string::npos || n == "dm")
    return SchedulingProtocol::DeadlineMonotonic;
  if (n.find("hpf") != std::string::npos ||
      n.find("highest_priority_first") != std::string::npos ||
      n.find("fixed_priority") != std::string::npos ||
      n.find("posix_1003_highest_priority_first") != std::string::npos)
    return SchedulingProtocol::HighestPriorityFirst;
  if (n.find("edf") != std::string::npos ||
      n.find("earliest_deadline_first") != std::string::npos)
    return SchedulingProtocol::Edf;
  if (n.find("llf") != std::string::npos ||
      n.find("least_laxity_first") != std::string::npos)
    return SchedulingProtocol::Llf;
  diags.error({}, "unsupported Scheduling_Protocol '" + *name + "' on '" +
                      processor.path + "'");
  return std::nullopt;
}

ConnectionProperties connection_properties(const InstanceModel& model,
                                           const SemanticConnection& conn,
                                           util::DiagnosticEngine& diags) {
  ConnectionProperties cp;
  if (const PropertyValue* pv =
          find_connection_property(model, conn, "queue_size")) {
    if (const auto* iu = std::get_if<IntWithUnit>(&pv->data)) {
      if (iu->value < 1 || iu->value > 1024) {
        diags.error({}, "Queue_Size of connection " + conn.describe() +
                            " out of range [1, 1024]");
      } else {
        cp.queue_size = static_cast<int>(iu->value);
      }
    }
  }
  if (const PropertyValue* pv = find_connection_property(
          model, conn, "overflow_handling_protocol")) {
    if (const auto* name = std::get_if<std::string>(&pv->data)) {
      if (util::iequals(*name, "error"))
        cp.overflow = OverflowProtocol::Error;
      else if (util::iequals(*name, "dropoldest"))
        cp.overflow = OverflowProtocol::DropOldest;
      else if (util::iequals(*name, "dropnewest"))
        cp.overflow = OverflowProtocol::DropNewest;
      else
        diags.warning({}, "unknown Overflow_Handling_Protocol '" + *name +
                              "' on " + conn.describe() +
                              "; defaulting to DropNewest");
    }
  }
  if (const PropertyValue* pv =
          find_connection_property(model, conn, "urgency")) {
    if (const auto* iu = std::get_if<IntWithUnit>(&pv->data))
      cp.urgency = static_cast<int>(iu->value);
  }
  return cp;
}

}  // namespace aadlsched::aadl
