#include "aadl/lexer.hpp"

#include <cctype>
#include <limits>
#include <string>

namespace aadlsched::aadl {

namespace {

class LexerImpl {
 public:
  LexerImpl(std::string_view src, util::DiagnosticEngine& diags)
      : src_(src), diags_(diags) {}

  std::vector<AadlToken> run() {
    std::vector<AadlToken> out;
    while (true) {
      AadlToken t = next();
      out.push_back(t);
      if (t.kind == TokKind::End) break;
    }
    return out;
  }

 private:
  char peek(std::size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_trivia() {
    while (pos_ < src_.size()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '-' && peek(1) == '-') {
        while (pos_ < src_.size() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  AadlToken next() {
    skip_trivia();
    AadlToken t;
    t.loc = {line_, col_};
    if (pos_ >= src_.size()) return t;
    const std::size_t start = pos_;
    const char c = advance();
    switch (c) {
      case ':':
        t.kind = peek() == ':' ? (advance(), TokKind::ColonColon)
                               : TokKind::Colon;
        break;
      case ';': t.kind = TokKind::Semicolon; break;
      case ',': t.kind = TokKind::Comma; break;
      case '(': t.kind = TokKind::LParen; break;
      case ')': t.kind = TokKind::RParen; break;
      case '{': t.kind = TokKind::LBrace; break;
      case '}': t.kind = TokKind::RBrace; break;
      case '[': t.kind = TokKind::LBracket; break;
      case ']': t.kind = TokKind::RBracket; break;
      case '*': t.kind = TokKind::Star; break;
      case '+':
        if (peek() == '=' && peek(1) == '>') {
          advance();
          advance();
          t.kind = TokKind::AppendAssoc;
        } else {
          t.kind = TokKind::Plus;
        }
        break;
      case '=':
        if (peek() == '>') {
          advance();
          t.kind = TokKind::Assoc;
        } else {
          diags_.error(t.loc, "stray '=' (did you mean '=>'?)");
          return next();
        }
        break;
      case '-':
        if (peek() == '>') {
          advance();
          t.kind = TokKind::Arrow;
        } else {
          t.kind = TokKind::Minus;
        }
        break;
      case '<':
        if (peek() == '-' && peek(1) == '>') {
          advance();
          advance();
          t.kind = TokKind::BiArrow;
        } else {
          diags_.error(t.loc, "stray '<' (did you mean '<->'?)");
          return next();
        }
        break;
      case '.':
        t.kind = peek() == '.' ? (advance(), TokKind::DotDot) : TokKind::Dot;
        break;
      case '"': {
        while (pos_ < src_.size() && peek() != '"') advance();
        if (pos_ >= src_.size()) {
          diags_.error(t.loc, "unterminated string literal");
        } else {
          advance();  // closing quote
        }
        t.kind = TokKind::String;
        break;
      }
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          std::int64_t v = c - '0';
          while (std::isdigit(static_cast<unsigned char>(peek()))) {
            const std::int64_t digit = advance() - '0';
            // Saturate instead of overflowing (UB): absurd magnitudes are
            // rejected later by property validation, not here.
            constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
            v = v > (kMax - digit) / 10 ? kMax : v * 10 + digit;
          }
          // A real literal has a single '.' followed by a digit (leave ".."
          // alone — it is a range operator).
          if (peek() == '.' &&
              std::isdigit(static_cast<unsigned char>(peek(1)))) {
            advance();
            double frac = 0.0, scale = 0.1;
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
              frac += (advance() - '0') * scale;
              scale *= 0.1;
            }
            t.kind = TokKind::Real;
            t.real_value = static_cast<double>(v) + frac;
          } else {
            t.kind = TokKind::Integer;
            t.int_value = v;
          }
        } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
          while (std::isalnum(static_cast<unsigned char>(peek())) ||
                 peek() == '_')
            advance();
          t.kind = TokKind::Ident;
        } else {
          diags_.error(t.loc,
                       std::string("unexpected character '") + c + "'");
          return next();
        }
        break;
    }
    t.text = src_.substr(start, pos_ - start);
    return t;
  }

  std::string_view src_;
  util::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace

std::vector<AadlToken> lex(std::string_view source,
                           util::DiagnosticEngine& diags) {
  return LexerImpl(source, diags).run();
}

}  // namespace aadlsched::aadl
