// End-to-end reproduction of the paper's running example (Figure 1): the
// cruise-control system with two processors, a bus, and six periodic
// threads. Translates the AADL model to ACSR, explores the state space and
// prints the verdict — plus the translated ACSR module, the paper's
// "input of the VERSA tool" (§5).
//
// Usage: cruise_control [path/to/cruise_control.aadl] [--acsr]
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/analyzer.hpp"

int main(int argc, char** argv) {
  std::string path = AADLSCHED_MODELS_DIR "/cruise_control.aadl";
  bool dump_acsr = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--acsr")
      dump_acsr = true;
    else
      path = arg;
  }

  using namespace aadlsched;

  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 10'000'000;  // 10 ms quantum

  if (dump_acsr) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string diagnostics;
    const std::string acsr = core::render_acsr(
        buf.str(), "CruiseControlSystem.impl", diagnostics, opts.translation);
    if (acsr.empty()) {
      std::cerr << diagnostics;
      return 1;
    }
    std::cout << acsr;
    return 0;
  }

  const core::AnalysisResult result =
      core::analyze_file(path, "CruiseControlSystem.impl", opts);
  if (!result.diagnostics.empty()) std::cerr << result.diagnostics;
  std::cout << "Cruise control system (Fig. 1), quantum = 10 ms\n";
  std::cout << "threads:\n";
  for (const auto& t : result.threads) {
    std::cout << "  " << t.path << "  C=[" << t.cmin << "," << t.cmax
              << "] T=" << t.period << " D=" << t.deadline
              << " prio=" << t.static_priority << " on " << t.cpu_resource
              << "\n";
  }
  std::cout << result.summary() << "\n";
  return result.ok && result.schedulable ? 0 : 1;
}
