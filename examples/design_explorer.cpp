// Design-space exploration (§1: "efficient exploration of design
// alternatives ... early in the design cycle"): sweep RefSpeed's period
// and Cruise1's worst-case execution time in the cruise-control system and
// chart the schedulable region. Each cell is one full parse -> instantiate
// -> translate -> explore run; cells are independent and run on a thread
// pool.
#include <atomic>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/analyzer.hpp"
#include "versa/sweep.hpp"

using namespace aadlsched;

namespace {

std::string load_model() {
  std::ifstream in(AADLSCHED_MODELS_DIR "/cruise_control.aadl");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string with_params(std::string src, int refspeed_period_ms,
                        int cruise1_wcet_ms) {
  const std::string ref_find =
      "    Period => 50 ms;\n"
      "    Compute_Execution_Time => 10 ms .. 10 ms;\n"
      "    Deadline => 50 ms;\n"
      "  end RefSpeed.impl;";
  const std::string ref_repl =
      "    Period => " + std::to_string(refspeed_period_ms) +
      " ms;\n"
      "    Compute_Execution_Time => 10 ms .. 10 ms;\n"
      "    Deadline => " +
      std::to_string(refspeed_period_ms) +
      " ms;\n"
      "  end RefSpeed.impl;";
  auto pos = src.find(ref_find);
  if (pos != std::string::npos) src.replace(pos, ref_find.size(), ref_repl);

  const std::string c1_find =
      "    Compute_Execution_Time => 10 ms .. 20 ms;\n"
      "    Deadline => 50 ms;\n"
      "  end Cruise1.impl;";
  const std::string c1_repl =
      "    Compute_Execution_Time => 10 ms .. " +
      std::to_string(cruise1_wcet_ms) +
      " ms;\n"
      "    Deadline => 50 ms;\n"
      "  end Cruise1.impl;";
  pos = src.find(c1_find);
  if (pos != std::string::npos) src.replace(pos, c1_find.size(), c1_repl);
  return src;
}

}  // namespace

int main() {
  const std::string base = load_model();
  const std::vector<int> periods = {20, 30, 40, 50};   // RefSpeed period, ms
  const std::vector<int> wcets = {10, 20, 30, 40};     // Cruise1 WCET, ms

  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 10'000'000;

  std::vector<int> verdicts(periods.size() * wcets.size(), -1);
  versa::parallel_sweep(verdicts.size(), [&](std::size_t k) {
    const int period = periods[k / wcets.size()];
    const int wcet = wcets[k % wcets.size()];
    const auto r = core::analyze_source(with_params(base, period, wcet),
                                        "CruiseControlSystem.impl", opts);
    verdicts[k] = r.ok && r.schedulable ? 1 : 0;
  });

  std::cout << "Schedulable region (rows: RefSpeed period; cols: Cruise1 "
               "WCET, ms)\n        ";
  for (int w : wcets) std::cout << w << "\t";
  std::cout << "\n";
  for (std::size_t i = 0; i < periods.size(); ++i) {
    std::cout << "T=" << periods[i] << "ms\t";
    for (std::size_t j = 0; j < wcets.size(); ++j)
      std::cout << (verdicts[i * wcets.size() + j] ? "yes" : "NO") << "\t";
    std::cout << "\n";
  }
  return 0;
}
