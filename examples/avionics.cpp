// Avionics example: EDF scheduling, sporadic/aperiodic dispatch through
// queues, a device-driven event source, a bus-bound cross-processor
// connection, and an end-to-end latency requirement verified by a
// synthesized observer process (§5).
//
// Usage: avionics [path/to/avionics.aadl]
#include <iostream>
#include <string>

#include "core/analyzer.hpp"

int main(int argc, char** argv) {
  using namespace aadlsched;

  const std::string path =
      argc > 1 ? argv[1] : AADLSCHED_MODELS_DIR "/avionics.aadl";

  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;  // 1 ms quantum
  // End-to-end requirement: a control command issued by ControlLaw must be
  // actuated within 15 ms of the law's dispatch.
  opts.translation.latency_specs.push_back(
      {"law", "actuator", 15'000'000});

  const core::AnalysisResult result =
      core::analyze_file(path, "Avionics.impl", opts);
  if (!result.diagnostics.empty()) std::cerr << result.diagnostics;

  std::cout << "Avionics system: EDF flight computer + RM I/O processor\n";
  for (const auto& t : result.threads) {
    std::cout << "  " << t.path << "  C=[" << t.cmin << "," << t.cmax
              << "] T=" << t.period << " D=" << t.deadline << " on "
              << t.cpu_resource
              << (t.static_priority == 0
                      ? " (dynamic priority)"
                      : " prio=" + std::to_string(t.static_priority))
              << "\n";
  }
  std::cout << result.summary() << "\n";
  return result.ok && result.schedulable ? 0 : 1;
}
