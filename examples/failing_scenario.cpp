// Demonstrates the paper's diagnostic output (§5): an overloaded system is
// found non-schedulable and the deadlocking ACSR trace is lifted back to
// the AADL level as a per-thread timeline plus a narrated step list.
#include <iostream>

#include "core/analyzer.hpp"

static const char* kModel = R"(
package Overload
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;

  thread Sensor
  end Sensor;
  thread implementation Sensor.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Compute_Execution_Time => 2 ms .. 2 ms;
    Deadline => 4 ms;
  end Sensor.impl;

  thread Filter
  end Filter;
  thread implementation Filter.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 6 ms;
    Compute_Execution_Time => 2 ms .. 4 ms;
    Deadline => 6 ms;
  end Filter.impl;

  system Node
  end Node;
  system implementation Node.impl
  subcomponents
    cpu    : processor Cpu;
    sensor : thread Sensor.impl;
    filter : thread Filter.impl;
  properties
    Actual_Processor_Binding => reference (cpu) applies to sensor;
    Actual_Processor_Binding => reference (cpu) applies to filter;
  end Node.impl;
end Overload;
)";

int main() {
  using namespace aadlsched;

  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;

  // U = 2/4 + 4/6 = 1.17 on one processor: a violation must exist, and the
  // analyzer shows where.
  const core::AnalysisResult result =
      core::analyze_source(kModel, "Node.impl", opts);
  if (!result.diagnostics.empty()) std::cerr << result.diagnostics;
  std::cout << result.summary() << "\n";
  // Exit 0: finding the violation IS the expected outcome of this demo.
  return result.ok && !result.schedulable ? 0 : 1;
}
