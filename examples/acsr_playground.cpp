// ACSR playground: builds the paper's Figure 2/3 processes directly
// against the process-algebra API, prints the full labelled transition
// system of the composition, and replays the preemption story of §3.
//
// Also demonstrates the textual frontend: the same system is given in the
// VERSA-flavoured concrete syntax and parsed back.
#include <iostream>

#include "acsr/builder.hpp"
#include "acsr/parser.hpp"
#include "acsr/printer.hpp"
#include "acsr/semantics.hpp"
#include "versa/explorer.hpp"

using namespace aadlsched;
using namespace aadlsched::acsr;

namespace {

void print_lts(Context& ctx, Semantics& sem, TermId initial) {
  const versa::Lts lts = versa::build_lts(sem, initial, 200);
  Printer printer(ctx);
  for (std::size_t i = 0; i < lts.states.size(); ++i) {
    std::cout << "  s" << i << " = " << printer.ground_term(lts.states[i])
              << "\n";
    for (const Transition& tr : lts.edges[i]) {
      std::cout << "      --" << render_label(ctx, tr.label) << "--> s"
                << lts.index.at(tr.target) << "\n";
    }
  }
}

}  // namespace

int main() {
  Context ctx;
  Builder b(ctx);
  Semantics sem(ctx);

  std::cout << "== Figure 2: the Simple process ==\n";
  b.def("Simple",  {},
        b.pick({b.act({{"cpu", b.c(1)}}, b.call("Simple1")),
                b.idle(b.call("Simple"))}));
  b.def("Simple1", {},
        b.pick({b.act({{"cpu", b.c(1)}, {"bus", b.c(1)}}, b.call("Simple2")),
                b.idle(b.call("Simple1"))}));
  b.def("Simple2", {}, b.send("done", b.c(1), b.call("Simple")));
  Printer printer(ctx);
  std::cout << printer.module();

  std::cout << "\n== Figure 3: composed with SimpleDriver ==\n";
  b.def("Driver",  {}, b.act({{"bus", b.c(2)}}, b.call("Driver1")));
  b.def("Driver1", {}, b.act({{"bus", b.c(2)}}, b.call("Driver2")));
  b.def("Driver2", {}, b.idle(b.call("Driver2")));
  const TermId sys =
      ctx.terms().parallel({b.start("Simple"), b.start("Driver")});
  std::cout << "prioritized transition system (driver preempts the bus for "
               "one quantum):\n";
  print_lts(ctx, sem, sys);

  std::cout << "\n== The same story in concrete syntax ==\n";
  const char* text = R"(
    P = {(cpu,1)} : {(cpu,1),(bus,1)} : (done!,1) . P
    Q = {(bus,2)} : {(bus,2)} : Qidle
    Qidle = {} : Qidle
    Sys = P || Q
  )";
  Context ctx2;
  util::DiagnosticEngine diags("playground.acsr");
  if (!parse_module(ctx2, text, diags)) {
    std::cerr << diags.render_all();
    return 1;
  }
  Builder b2(ctx2);
  Semantics sem2(ctx2);
  // Without idling steps P deadlocks when the driver holds the bus — the
  // exhaustive exploration finds it (Fig. 2a vs 2b).
  const auto r = versa::explore(sem2, b2.start("Sys"));
  std::cout << "without idling steps: "
            << (r.deadlock_found ? "deadlocks (as §3 explains)"
                                 : "no deadlock")
            << " after " << r.states << " states\n";
  return 0;
}
