// Quickstart: analyze a two-thread AADL model given inline, print the
// verdict. This is the smallest complete use of the public API.
#include <iostream>

#include "core/analyzer.hpp"

static const char* kModel = R"(
package Quickstart
public
  processor Cpu
  properties
    Scheduling_Protocol => RATE_MONOTONIC_PROTOCOL;
  end Cpu;

  thread Control
  end Control;
  thread implementation Control.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 10 ms;
    Compute_Execution_Time => 2 ms .. 4 ms;
    Deadline => 10 ms;
  end Control.impl;

  thread Logger
  end Logger;
  thread implementation Logger.impl
  properties
    Dispatch_Protocol => Periodic;
    Period => 20 ms;
    Compute_Execution_Time => 5 ms .. 8 ms;
    Deadline => 20 ms;
  end Logger.impl;

  system Board
  end Board;
  system implementation Board.impl
  subcomponents
    cpu     : processor Cpu;
    control : thread Control.impl;
    logger  : thread Logger.impl;
  properties
    Actual_Processor_Binding => reference (cpu) applies to control;
    Actual_Processor_Binding => reference (cpu) applies to logger;
  end Board.impl;
end Quickstart;
)";

int main() {
  using namespace aadlsched;

  core::AnalyzerOptions opts;
  opts.translation.quantum_ns = 1'000'000;  // 1 ms quantum

  const core::AnalysisResult result =
      core::analyze_source(kModel, "Board.impl", opts);
  if (!result.diagnostics.empty()) std::cerr << result.diagnostics;
  std::cout << result.summary() << "\n";
  return result.ok && result.schedulable ? 0 : 1;
}
